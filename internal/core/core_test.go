package core

import (
	"fmt"
	"repro/internal/testutil"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/decomp"
	tracepkg "repro/internal/trace"
	"repro/internal/transport"
)

// buildCoupling builds a framework with exporter program E (2x2 grid over 4
// procs... configurable) exporting region "d" to importer program I.
func buildCoupling(t *testing.T, opts Options, expProcs, impProcs, size int, policyLine string) *Framework {
	t.Helper()
	cfg, err := config.ParseString(fmt.Sprintf(`
E local /bin/e %d
I local /bin/i %d
#
E.d I.d %s
`, expProcs, impProcs, policyLine))
	if err != nil {
		t.Fatal(err)
	}
	if opts.Timeout == 0 {
		opts.Timeout = 20 * time.Second
	}
	f, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	expLayout, err := decomp.NewRowBlock(size, size, expProcs)
	if err != nil {
		t.Fatal(err)
	}
	impLayout, err := decomp.NewColBlock(size, size, impProcs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.MustProgram("E").DefineRegion("d", expLayout); err != nil {
		t.Fatal(err)
	}
	if err := f.MustProgram("I").DefineRegion("d", impLayout); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	return f
}

// cell is the test data function: the value of grid element (r,c) at
// timestamp ts.
func cell(ts float64, r, c int) float64 { return ts*1e6 + float64(r*1000+c) }

// fillBlock builds the local block data of a process for timestamp ts.
func fillBlock(block decomp.Rect, ts float64) []float64 {
	g := decomp.NewGrid(block)
	g.Fill(func(r, c int) float64 { return cell(ts, r, c) })
	return g.Data
}

// runProcs runs fn concurrently for each process of prog and collects errors.
func runProcs(t *testing.T, prog *Program, fn func(p *Process) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, prog.Procs())
	for r := 0; r < prog.Procs(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(prog.Process(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("%s rank %d: %v", prog.Name(), r, err)
		}
	}
}

// TestEndToEndCoupling runs the full protocol: a 2-process exporter feeding
// a 3-process importer across mismatched layouts, REGL matching, and
// verifies every imported element equals the matched version's data.
func TestEndToEndCoupling(t *testing.T) {
	f := buildCoupling(t, Options{BuddyHelp: true}, 2, 3, 12, "REGL 2.5")
	exp, imp := f.MustProgram("E"), f.MustProgram("I")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, exp, func(p *Process) error {
			block, err := p.Block("d")
			if err != nil {
				return err
			}
			for k := 1; k <= 25; k++ {
				ts := float64(k)
				if err := p.Export("d", ts, fillBlock(block, ts)); err != nil {
					return err
				}
			}
			return nil
		})
	}()

	runProcs(t, imp, func(p *Process) error {
		block, err := p.Block("d")
		if err != nil {
			return err
		}
		dst := make([]float64, block.Area())
		for _, reqTS := range []float64{5, 10, 20} {
			res, err := p.Import("d", reqTS, dst)
			if err != nil {
				return err
			}
			if !res.Matched {
				return fmt.Errorf("request @%g: no match", reqTS)
			}
			// REGL: the match is the largest export <= reqTS; exports are
			// integers, so the match must be reqTS itself.
			if res.MatchTS != reqTS {
				return fmt.Errorf("request @%g matched %g", reqTS, res.MatchTS)
			}
			g := decomp.Grid{Block: block, Data: dst}
			for r := block.R0; r < block.R1; r++ {
				for c := block.C0; c < block.C1; c++ {
					if got := g.At(r, c); got != cell(res.MatchTS, r, c) {
						return fmt.Errorf("req @%g element (%d,%d) = %v, want %v",
							reqTS, r, c, got, cell(res.MatchTS, r, c))
					}
				}
			}
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestNoMatchAnswer: a request whose region the exporter skipped entirely
// resolves to NO MATCH on every importer process.
func TestNoMatchAnswer(t *testing.T) {
	f := buildCoupling(t, Options{BuddyHelp: true}, 2, 2, 8, "REGL 0.25")
	exp, imp := f.MustProgram("E"), f.MustProgram("I")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, exp, func(p *Process) error {
			block, _ := p.Block("d")
			for _, ts := range []float64{1, 2, 8, 9} {
				if err := p.Export("d", ts, fillBlock(block, ts)); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	runProcs(t, imp, func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		res, err := p.Import("d", 5, dst) // region [4.75, 5]: nothing there
		if err != nil {
			return err
		}
		if res.Matched {
			return fmt.Errorf("matched %g, want NO MATCH", res.MatchTS)
		}
		// A later request still works.
		res, err = p.Import("d", 8, dst)
		if err != nil {
			return err
		}
		if !res.Matched || res.MatchTS != 8 {
			return fmt.Errorf("second request: %+v", res)
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestBuddyHelpReducesCopies runs the paper's slow-exporter scenario twice —
// buddy-help on and off — and asserts (a) identical transferred data and
// (b) strictly fewer memcpys on the slow process with buddy-help.
func TestBuddyHelpReducesCopies(t *testing.T) {
	const (
		nExports = 60
		period   = 10 // one request every 'period' exporter steps
		size     = 8
	)
	run := func(buddy bool) (copies, skips int) {
		f := buildCoupling(t, Options{BuddyHelp: buddy}, 2, 2, size, "REGL 2.5")
		exp, imp := f.MustProgram("E"), f.MustProgram("I")
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			runProcs(t, exp, func(p *Process) error {
				block, _ := p.Block("d")
				for k := 1; k <= nExports; k++ {
					if p.Rank() == 1 {
						// The slow process p_s: extra computational work.
						testutil.Sleep(2 * time.Millisecond)
					}
					if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
						return err
					}
				}
				return nil
			})
		}()
		runProcs(t, imp, func(p *Process) error {
			block, _ := p.Block("d")
			dst := make([]float64, block.Area())
			for x := period; x <= nExports; x += period {
				res, err := p.Import("d", float64(x), dst)
				if err != nil {
					return err
				}
				if !res.Matched || res.MatchTS != float64(x) {
					return fmt.Errorf("request @%d resolved %+v", x, res)
				}
			}
			return nil
		})
		wg.Wait()
		if err := f.Err(); err != nil {
			t.Fatal(err)
		}
		stats, err := exp.Process(1).ExportStats("d")
		if err != nil {
			t.Fatal(err)
		}
		s := stats["I.d"]
		return s.Copies, s.Skips
	}

	copiesWith, skipsWith := run(true)
	copiesWithout, skipsWithout := run(false)
	t.Logf("slow process: with buddy-help copies=%d skips=%d; without copies=%d skips=%d",
		copiesWith, skipsWith, copiesWithout, skipsWithout)
	if copiesWith >= copiesWithout {
		t.Errorf("buddy-help did not reduce copies: %d >= %d", copiesWith, copiesWithout)
	}
	if skipsWith <= skipsWithout {
		t.Errorf("buddy-help did not increase skips: %d <= %d", skipsWith, skipsWithout)
	}
}

// TestImporterCollectiveViolation: importer processes requesting different
// timestamps for the same collective call must trip Property-1 validation.
func TestImporterCollectiveViolation(t *testing.T) {
	f := buildCoupling(t, Options{BuddyHelp: true, Timeout: 5 * time.Second}, 1, 2, 4, "REGL 1")
	imp := f.MustProgram("I")

	var wg sync.WaitGroup
	results := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := imp.Process(r)
			block, _ := p.Block("d")
			dst := make([]float64, block.Area())
			_, results[r] = p.Import("d", float64(10+r), dst) // ranks disagree
		}(r)
	}
	wg.Wait()
	if results[0] == nil && results[1] == nil {
		t.Fatal("disagreeing collective imports both succeeded")
	}
	err := f.Err()
	if err == nil || !strings.Contains(err.Error(), "Property 1") {
		t.Errorf("framework error = %v, want Property 1 violation", err)
	}
}

// TestUnconnectedExportIsFastPath: exporting a defined region with no
// connection does nothing (and allocates no buffers).
func TestUnconnectedExportIsFastPath(t *testing.T) {
	cfg, err := config.ParseString(`
E local /bin/e 1
I local /bin/i 1
#
E.d I.d REGL 1
`)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cfg, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l4, _ := decomp.NewRowBlock(4, 4, 1)
	e := f.MustProgram("E")
	if err := e.DefineRegion("d", l4); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineRegion("lonely", l4); err != nil {
		t.Fatal(err)
	}
	if err := f.MustProgram("I").DefineRegion("d", l4); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	p := e.Process(0)
	for k := 1; k <= 100; k++ {
		if err := p.Export("lonely", float64(k), make([]float64, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.ExportStats("lonely"); err == nil {
		t.Error("unconnected region has export state")
	}
	// Wrong data size still validated on the fast path.
	if err := p.Export("lonely", 101, make([]float64, 3)); err == nil {
		t.Error("wrong-size export accepted on fast path")
	}
}

// TestImportUnconnectedRegionFails: importing a region no connection feeds
// is an immediate error (the paper's early-detection property).
func TestImportUnconnectedRegionFails(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 5 * time.Second}, 1, 1, 4, "REGL 1")
	p := f.MustProgram("I").Process(0)
	if _, err := p.Import("ghost", 1, make([]float64, 16)); err == nil {
		t.Error("import of unconnected region succeeded")
	}
}

// TestStartValidatesRegions: a connection naming an undefined region or
// mismatched shapes fails at Start.
func TestStartValidatesRegions(t *testing.T) {
	mk := func() (*Framework, *Program, *Program) {
		cfg, err := config.ParseString("E local /bin/e 1\nI local /bin/i 1\n#\nE.d I.d REGL 1\n")
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f, f.MustProgram("E"), f.MustProgram("I")
	}

	f, _, i := mk()
	l, _ := decomp.NewRowBlock(4, 4, 1)
	i.DefineRegion("d", l)
	if err := f.Start(); err == nil || !strings.Contains(err.Error(), "never defined region") {
		t.Errorf("undefined exporter region: %v", err)
	}

	f2, e2, i2 := mk()
	l4, _ := decomp.NewRowBlock(4, 4, 1)
	l5, _ := decomp.NewRowBlock(5, 4, 1)
	e2.DefineRegion("d", l4)
	i2.DefineRegion("d", l5)
	if err := f2.Start(); err == nil || !strings.Contains(err.Error(), "couples a") {
		t.Errorf("shape mismatch: %v", err)
	}
}

func TestDefineRegionValidation(t *testing.T) {
	cfg, _ := config.ParseString("E local /bin/e 2\nI local /bin/i 1\n#\nE.d I.d REGL 1\n")
	f, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	e := f.MustProgram("E")
	l1, _ := decomp.NewRowBlock(4, 4, 1)
	if err := e.DefineRegion("d", l1); err == nil {
		t.Error("layout with wrong proc count accepted")
	}
	l2, _ := decomp.NewRowBlock(4, 4, 2)
	if err := e.DefineRegion("", l2); err == nil {
		t.Error("empty region name accepted")
	}
	if err := e.DefineRegion("d", l2); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineRegion("d", l2); err == nil {
		t.Error("duplicate region accepted")
	}
	if _, err := f.Program("nope"); err == nil {
		t.Error("unknown program lookup succeeded")
	}
}

// TestFanOutExport: one exported region feeding two importer programs with
// different policies; both receive correct (possibly different) matches.
func TestFanOutExport(t *testing.T) {
	cfg, err := config.ParseString(`
E local /bin/e 2
A local /bin/a 2
B local /bin/b 1
#
E.d A.d REGL 2.5
E.d B.d REGL 0.25
`)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cfg, Options{BuddyHelp: true, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const size = 6
	le, _ := decomp.NewRowBlock(size, size, 2)
	la, _ := decomp.NewColBlock(size, size, 2)
	lb, _ := decomp.NewRowBlock(size, size, 1)
	f.MustProgram("E").DefineRegion("d", le)
	f.MustProgram("A").DefineRegion("d", la)
	f.MustProgram("B").DefineRegion("d", lb)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, f.MustProgram("E"), func(p *Process) error {
			block, _ := p.Block("d")
			for k := 1; k <= 30; k++ {
				ts := float64(k) - 0.5 // exports at 0.5, 1.5, ...
				if err := p.Export("d", ts, fillBlock(block, ts)); err != nil {
					return err
				}
			}
			return nil
		})
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, f.MustProgram("A"), func(p *Process) error {
			block, _ := p.Block("d")
			dst := make([]float64, block.Area())
			res, err := p.Import("d", 10, dst)
			if err != nil {
				return err
			}
			// REGL 2.5 around 10: match is 9.5.
			if !res.Matched || res.MatchTS != 9.5 {
				return fmt.Errorf("A matched %+v", res)
			}
			g := decomp.Grid{Block: block, Data: dst}
			if g.At(block.R0, block.C0) != cell(9.5, block.R0, block.C0) {
				return fmt.Errorf("A data wrong")
			}
			return nil
		})
	}()

	runProcs(t, f.MustProgram("B"), func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		res, err := p.Import("d", 12, dst)
		if err != nil {
			return err
		}
		// REGL 0.25 around 12: nothing in [11.75, 12] -> NO MATCH.
		if res.Matched {
			return fmt.Errorf("B matched %+v", res)
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceCapturesBuddyHelp: with tracing on and a slow exporter rank, the
// slow process's log shows buddy-help messages and skipped memcpys.
func TestTraceCapturesBuddyHelp(t *testing.T) {
	f := buildCoupling(t, Options{BuddyHelp: true, Trace: true}, 2, 1, 4, "REGL 2.5")
	exp, imp := f.MustProgram("E"), f.MustProgram("I")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, exp, func(p *Process) error {
			block, _ := p.Block("d")
			for k := 1; k <= 12; k++ {
				if p.Rank() == 1 && k == 4 {
					// Rank 1 is the slow process: it stalls until the fast
					// rank's answer produced a buddy-help message for it.
					deadline := testutil.Now().Add(10 * time.Second)
					for p.Trace().Count(tracepkg.OpBuddyHelp) == 0 {
						if testutil.Now().After(deadline) {
							return fmt.Errorf("no buddy-help within deadline")
						}
						testutil.Sleep(time.Millisecond)
					}
				}
				if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	runProcs(t, imp, func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		res, err := p.Import("d", 10, dst)
		if err != nil {
			return err
		}
		if !res.Matched || res.MatchTS != 10 {
			return fmt.Errorf("matched %+v", res)
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	log := exp.Process(1).Trace()
	if log == nil {
		t.Fatal("tracing enabled but no log")
	}
	text := log.Format()
	if !strings.Contains(text, "buddy-help") {
		t.Errorf("slow process trace lacks buddy-help:\n%s", text)
	}
	if !strings.Contains(text, "skip memcpy") {
		t.Errorf("slow process trace lacks skipped memcpys:\n%s", text)
	}
}

// TestCouplingOverTCP runs the end-to-end protocol over real sockets.
func TestCouplingOverTCP(t *testing.T) {
	router, err := transport.StartTCPRouter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	f := buildCoupling(t, Options{
		BuddyHelp: true,
		Network:   transport.NewTCPNetwork(router.ListenAddr()),
		Timeout:   30 * time.Second,
	}, 2, 2, 8, "REGL 2.5")
	exp, imp := f.MustProgram("E"), f.MustProgram("I")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, exp, func(p *Process) error {
			block, _ := p.Block("d")
			for k := 1; k <= 15; k++ {
				if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	runProcs(t, imp, func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		res, err := p.Import("d", 10, dst)
		if err != nil {
			return err
		}
		if !res.Matched || res.MatchTS != 10 {
			return fmt.Errorf("matched %+v", res)
		}
		g := decomp.Grid{Block: block, Data: dst}
		if g.At(block.R0, block.C0) != cell(10, block.R0, block.C0) {
			return fmt.Errorf("data wrong over TCP")
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedCouplingCycles exercises many request cycles to shake out
// request-id bookkeeping drift.
func TestRepeatedCouplingCycles(t *testing.T) {
	f := buildCoupling(t, Options{BuddyHelp: true}, 2, 2, 6, "REGL 0.5")
	exp, imp := f.MustProgram("E"), f.MustProgram("I")
	const cycles = 20

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, exp, func(p *Process) error {
			block, _ := p.Block("d")
			for k := 1; k <= cycles*3+5; k++ {
				if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	runProcs(t, imp, func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		for c := 1; c <= cycles; c++ {
			x := float64(c * 3)
			res, err := p.Import("d", x, dst)
			if err != nil {
				return fmt.Errorf("cycle %d: %w", c, err)
			}
			if !res.Matched || res.MatchTS != x {
				return fmt.Errorf("cycle %d resolved %+v", c, res)
			}
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	// Exactly `cycles` versions were transferred by each exporter process.
	for r := 0; r < exp.Procs(); r++ {
		stats, err := exp.Process(r).ExportStats("d")
		if err != nil {
			t.Fatal(err)
		}
		if got := stats["I.d"].Sends; got != cycles {
			t.Errorf("rank %d sends = %d, want %d", r, got, cycles)
		}
	}
}

// TestIntraProgramCollectives: processes of a framework program can use
// their Comm for halo-style exchanges alongside the coupling protocol.
func TestIntraProgramCollectives(t *testing.T) {
	f := buildCoupling(t, Options{}, 4, 1, 8, "REGL 1")
	exp := f.MustProgram("E")
	runProcs(t, exp, func(p *Process) error {
		sum, err := p.Comm().AllReduceScalar(float64(p.Rank()+1), collective.Sum)
		if err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("allreduce = %v", sum)
		}
		return nil
	})
	// The per-op/per-algo instruments observed the operation and surface it
	// in the framework's /statusz section.
	var b strings.Builder
	f.Obsv().WriteStatus(&b)
	if !strings.Contains(b.String(), "collectives:") || !strings.Contains(b.String(), "allreduce.") {
		t.Errorf("statusz missing collectives section:\n%s", b.String())
	}
}

// TestExportTotals aggregates across processes and connections.
func TestExportTotals(t *testing.T) {
	f := buildCoupling(t, Options{BuddyHelp: true}, 2, 1, 4, "REGL 1")
	exp, imp := f.MustProgram("E"), f.MustProgram("I")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, exp, func(p *Process) error {
			block, _ := p.Block("d")
			for k := 1; k <= 8; k++ {
				if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	runProcs(t, imp, func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		_, err := p.Import("d", 5, dst)
		return err
	})
	wg.Wait()
	total, err := exp.ExportTotals("d")
	if err != nil {
		t.Fatal(err)
	}
	if total.Exports != 16 { // 8 exports x 2 processes
		t.Errorf("total exports %d, want 16", total.Exports)
	}
	if total.Sends != 2 { // one match, one piece per process
		t.Errorf("total sends %d, want 2", total.Sends)
	}
	if total.Copies+total.Skips != total.Exports {
		t.Errorf("copies %d + skips %d != exports %d", total.Copies, total.Skips, total.Exports)
	}
	if _, err := exp.ExportTotals("nope"); err == nil {
		t.Error("unknown region accepted")
	}
}

// TestProtocolStats verifies the control-plane message accounting, including
// that buddy-help messages appear only when the optimization is on.
func TestProtocolStats(t *testing.T) {
	run := func(buddy bool) (exp, imp ProtocolStats) {
		f := buildCoupling(t, Options{BuddyHelp: buddy}, 2, 2, 8, "REGL 2.5")
		e, i := f.MustProgram("E"), f.MustProgram("I")
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			runProcs(t, e, func(p *Process) error {
				block, _ := p.Block("d")
				for k := 1; k <= 25; k++ {
					if p.Rank() == 1 {
						testutil.Sleep(time.Millisecond) // keep one process slow
					}
					if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
						return err
					}
				}
				return nil
			})
		}()
		runProcs(t, i, func(p *Process) error {
			block, _ := p.Block("d")
			dst := make([]float64, block.Area())
			for _, x := range []float64{10, 20} {
				if _, err := p.Import("d", x, dst); err != nil {
					return err
				}
			}
			return nil
		})
		wg.Wait()
		if err := f.Err(); err != nil {
			t.Fatal(err)
		}
		return e.ProtocolStats(), i.ProtocolStats()
	}

	expOn, impOn := run(true)
	expOff, _ := run(false)

	// 2 requests, 2 exporter procs: 4 forwards, >= 4 responses, 2 answers.
	if expOn.RequestsForwarded != 4 {
		t.Errorf("forwards %d, want 4", expOn.RequestsForwarded)
	}
	if expOn.Responses < 4 {
		t.Errorf("responses %d, want >= 4", expOn.Responses)
	}
	if expOn.AnswersSent != 2 {
		t.Errorf("answers sent %d, want 2", expOn.AnswersSent)
	}
	// Importer: 2 procs x 2 calls; answers fanned to both procs.
	if impOn.ImportCalls != 4 {
		t.Errorf("import calls %d, want 4", impOn.ImportCalls)
	}
	if impOn.AnswersDelivered != 4 {
		t.Errorf("answers delivered %d, want 4", impOn.AnswersDelivered)
	}
	// Data: each exporter proc sends one piece per matched request per
	// intersecting importer proc.
	if expOn.DataMessages == 0 {
		t.Error("no data messages counted")
	}
	if expOff.BuddyMessages != 0 {
		t.Errorf("buddy messages %d with optimization off", expOff.BuddyMessages)
	}
}

// TestPolicyVariants drives REGU and REG connections through the full stack.
func TestPolicyVariants(t *testing.T) {
	cases := []struct {
		policy    string
		reqTS     float64
		wantMatch float64
	}{
		// Exports at 1..20. REGU @9.5 tol 2: region [9.5, 11.5] -> first
		// export at or above 9.5 is 10.
		{"REGU 2", 9.5, 10},
		// REG @9.4 tol 2: region [7.4, 11.4] -> closest to 9.4 is 9.
		{"REG 2", 9.4, 9},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.policy, func(t *testing.T) {
			f := buildCoupling(t, Options{BuddyHelp: true}, 2, 2, 8, tc.policy)
			exp, imp := f.MustProgram("E"), f.MustProgram("I")
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				runProcs(t, exp, func(p *Process) error {
					block, _ := p.Block("d")
					for k := 1; k <= 20; k++ {
						if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
							return err
						}
					}
					return nil
				})
			}()
			runProcs(t, imp, func(p *Process) error {
				block, _ := p.Block("d")
				dst := make([]float64, block.Area())
				res, err := p.Import("d", tc.reqTS, dst)
				if err != nil {
					return err
				}
				if !res.Matched || res.MatchTS != tc.wantMatch {
					return fmt.Errorf("resolved %+v, want MATCH %g", res, tc.wantMatch)
				}
				g := decomp.Grid{Block: block, Data: dst}
				if g.At(block.R0, block.C0) != cell(tc.wantMatch, block.R0, block.C0) {
					return fmt.Errorf("data of wrong version")
				}
				return nil
			})
			wg.Wait()
			if err := f.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
