package core

import (
	"fmt"
	"repro/internal/testutil"
	"sync"
	"testing"
	"time"

	"repro/internal/decomp"
)

// TestFinishRegionUnblocksTrailingImports: an importer that requests past
// the exporter's final version gets answers (including matches against
// still-buffered versions) instead of hanging.
func TestFinishRegionUnblocksTrailingImports(t *testing.T) {
	f := buildCoupling(t, Options{BuddyHelp: true, Timeout: 10 * time.Second}, 2, 2, 8, "REGL 2.5")
	exp, imp := f.MustProgram("E"), f.MustProgram("I")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, exp, func(p *Process) error {
			block, _ := p.Block("d")
			for k := 1; k <= 10; k++ {
				if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
					return err
				}
			}
			return p.FinishRegion("d")
		})
	}()

	runProcs(t, imp, func(p *Process) error {
		block, _ := p.Block("d")
		dst := make([]float64, block.Area())
		// Request @11: region [8.5, 11]; the exporter stopped at 10, which
		// stays buffered (beyond its last request horizon) and matches.
		res, err := p.Import("d", 11, dst)
		if err != nil {
			return err
		}
		if !res.Matched || res.MatchTS != 10 {
			return fmt.Errorf("request @11 resolved %+v, want MATCH D@10", res)
		}
		g := decomp.Grid{Block: block, Data: dst}
		if g.At(block.R0, block.C0) != cell(10, block.R0, block.C0) {
			return fmt.Errorf("data wrong after finish-resolved match")
		}
		// Request @50: far beyond anything produced: NO MATCH, not a hang.
		res, err = p.Import("d", 50, dst)
		if err != nil {
			return err
		}
		if res.Matched {
			return fmt.Errorf("request @50 matched %g", res.MatchTS)
		}
		return nil
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFinishRegionResolvesPending: requests already pending when the
// exporter finishes are answered.
func TestFinishRegionResolvesPending(t *testing.T) {
	f := buildCoupling(t, Options{BuddyHelp: true, Timeout: 10 * time.Second}, 2, 1, 4, "REGL 0.25")
	exp, imp := f.MustProgram("E"), f.MustProgram("I")

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProcs(t, imp, func(p *Process) error {
			close(started)
			block, _ := p.Block("d")
			dst := make([]float64, block.Area())
			// Region [19.75, 20]: the exporter never gets there.
			res, err := p.Import("d", 20, dst)
			if err != nil {
				return err
			}
			if res.Matched {
				return fmt.Errorf("matched %g, want NO MATCH", res.MatchTS)
			}
			return nil
		})
	}()

	<-started
	testutil.Sleep(20 * time.Millisecond) // let the request reach the exporter
	runProcs(t, exp, func(p *Process) error {
		block, _ := p.Block("d")
		for k := 1; k <= 3; k++ {
			if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
				return err
			}
		}
		return p.FinishRegion("d")
	})
	wg.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFinishRegionValidation: undefined regions fail; unconnected regions
// are a no-op; exporting after finishing fails.
func TestFinishRegionValidation(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 5 * time.Second}, 1, 1, 4, "REGL 1")
	p := f.MustProgram("E").Process(0)
	if err := p.FinishRegion("ghost"); err == nil {
		t.Error("undefined region accepted")
	}
	if err := p.FinishRegion("d"); err != nil {
		t.Fatal(err)
	}
	if err := p.Export("d", 1, make([]float64, 16)); err == nil {
		t.Error("export after FinishRegion accepted")
	}
}
