package core

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/obsv/diag"
)

// TestDiagWiring runs a coupled pair with Options.Diag on: the exporter's
// collectives must feed the straggler board, /diag/stragglers must serve it,
// /statusz must grow a diag: section, and DumpFlight must produce decodable
// flight dumps for both programs.
func TestDiagWiring(t *testing.T) {
	f := buildCoupling(t, Options{Diag: true, FlightDir: t.TempDir()}, 4, 2, 8, "REGL 1")
	const slow = 2
	prog := f.MustProgram("E")
	runProcs(t, prog, func(p *Process) error {
		for i := 0; i < 20; i++ {
			if p.Rank() == slow {
				time.Sleep(500 * time.Microsecond)
			}
			if _, err := p.Comm().AllReduceWith(collective.Ring, []float64{1}, collective.Sum); err != nil {
				return err
			}
		}
		return nil
	})

	s := prog.board.Snapshot()
	if s.Ops == 0 || s.Attributed() == 0 {
		t.Fatalf("board empty after 20 collectives: %+v", s)
	}
	if !raceDetectorOn() {
		if top := s.Top(1); len(top) == 0 || top[0].Rank != slow {
			t.Fatalf("top straggler %+v, want rank %d", top, slow)
		}
	}

	// /diag/stragglers is mounted on the observer and serves both programs.
	h := f.Obsv().HandlerFor("/diag/stragglers")
	if h == nil {
		t.Fatal("/diag/stragglers not mounted")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/diag/stragglers", nil))
	var payload struct {
		Programs []struct {
			Program string `json:"program"`
			Ops     uint64 `json:"ops"`
		} `json:"programs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(payload.Programs) != 2 || payload.Programs[0].Program != "E" || payload.Programs[0].Ops == 0 {
		t.Fatalf("payload: %s", rec.Body.String())
	}

	// /statusz gains the diag: block.
	var status strings.Builder
	f.writeStatus(&status)
	if !strings.Contains(status.String(), "diag:") || !strings.Contains(status.String(), "straggler rank") {
		t.Fatalf("statusz missing diag section:\n%s", status.String())
	}

	// DumpFlight writes one decodable dump per program.
	paths, err := f.DumpFlight("test")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("DumpFlight wrote %d files, want 2", len(paths))
	}
	d, err := diag.ReadDump(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	coll := 0
	for _, e := range d.Events {
		if e.Kind == diag.KindCollective {
			coll++
		}
	}
	if d.Program != "E" || coll == 0 {
		t.Fatalf("dump %s: program=%q collective events=%d", paths[0], d.Program, coll)
	}
}

// TestDiagOffNoTrailer pins the default: without Options.Diag no board, no
// recorder, no /diag endpoint — and the collective wire format is unchanged.
func TestDiagOffNoTrailer(t *testing.T) {
	f := buildCoupling(t, Options{}, 2, 2, 4, "REGL 1")
	prog := f.MustProgram("E")
	if prog.board != nil || prog.flight != nil {
		t.Fatal("diag state allocated without Options.Diag")
	}
	if f.Obsv().HandlerFor("/diag/stragglers") != nil {
		t.Fatal("/diag/stragglers mounted without Options.Diag")
	}
	if paths, err := f.DumpFlight("x"); err != nil || paths != nil {
		t.Fatalf("DumpFlight = %v, %v; want nil, nil", paths, err)
	}
}
