package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/recover"
	"repro/internal/testutil"
	"repro/internal/transport"
)

const recoveryCfg = `
E local b 2
I local b 2
#
E.d I.d REGL 0.5
`

const (
	recSteps   = 10 // collective steps in the workload
	recCkEvery = 3  // checkpoint every recCkEvery steps
	recCrashAt = 7  // importer dies after completing this step
	recGrid    = 8
)

// recRecorder collects every redistributed block an importer rank delivered,
// keyed by rank/step. A re-executed step after a restore records a second
// copy under the same key; all copies must be byte-identical to the
// fault-free run's.
type recRecorder struct {
	mu   sync.Mutex
	data map[string][][]float64
}

func (rc *recRecorder) record(rank, step int, d []float64) {
	key := fmt.Sprintf("%d/%d", rank, step)
	cp := append([]float64(nil), d...)
	rc.mu.Lock()
	rc.data[key] = append(rc.data[key], cp)
	rc.mu.Unlock()
}

// joinRecovery runs one side of a recoverable distributed coupling: a TCP +
// reliable transport stack built at the given restart epoch, Join with
// checkpointing against store, DefineRegion + Start + the app loop.
func joinRecovery(router, name string, layout decomp.Layout, store recover.Store,
	restore bool, epoch uint64, app func(prog *Program) error) error {
	cfg, err := config.ParseString(recoveryCfg)
	if err != nil {
		return err
	}
	tcp := transport.NewTCPNetwork(router)
	tcp.SessionEpoch = epoch
	net := transport.NewReliableNetwork(tcp, transport.ReliableConfig{
		SessionEpoch:   uint32(epoch),
		ResendInterval: 20 * time.Millisecond,
	})
	fw, err := Join(cfg, name, Options{
		Network:   net,
		BuddyHelp: true,
		Timeout:   30 * time.Second,
		Heartbeat: 250 * time.Millisecond,
		Recovery:  &RecoveryOptions{Store: store, Restore: restore, Every: recCkEvery},
	})
	if err != nil {
		net.Close()
		return err
	}
	defer fw.Close()
	prog, err := fw.Local()
	if err != nil {
		return err
	}
	if err := prog.DefineRegion("d", layout); err != nil {
		return err
	}
	if err := fw.Start(); err != nil {
		return err
	}
	if err := app(prog); err != nil {
		return err
	}
	return fw.Err()
}

// recExports drives the exporter ranks through the whole workload, then holds
// the program up until the importer (including a restarted incarnation) is
// done with it — shutdown coordination is application-level.
func recExports(prog *Program, done <-chan struct{}) error {
	var wg sync.WaitGroup
	perr := make([]error, prog.Procs())
	for r := 0; r < prog.Procs(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := prog.Process(r)
			block, err := p.Block("d")
			if err != nil {
				perr[r] = err
				return
			}
			for k := 1; k <= recSteps; k++ {
				if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
					perr[r] = err
					return
				}
				if k%recCkEvery == 0 {
					if err := p.Checkpoint(uint64(k)); err != nil {
						perr[r] = err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for _, e := range perr {
		if e != nil {
			return e
		}
	}
	<-done
	return nil
}

// recImports drives the importer ranks through steps [from, to], recording
// each delivered block and checkpointing on the collective schedule.
func recImports(prog *Program, from, to int, rec *recRecorder) error {
	var wg sync.WaitGroup
	perr := make([]error, prog.Procs())
	for r := 0; r < prog.Procs(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := prog.Process(r)
			block, err := p.Block("d")
			if err != nil {
				perr[r] = err
				return
			}
			for k := from; k <= to; k++ {
				dst := make([]float64, block.Area())
				res, err := p.Import("d", float64(k), dst)
				if err != nil {
					perr[r] = err
					return
				}
				if !res.Matched || res.MatchTS != float64(k) {
					perr[r] = fmt.Errorf("import rank %d step %d resolved %+v", r, k, res)
					return
				}
				rec.record(r, k, dst)
				if k%recCkEvery == 0 {
					if err := p.Checkpoint(uint64(k)); err != nil {
						perr[r] = err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for _, e := range perr {
		if e != nil {
			return e
		}
	}
	return nil
}

// runRecoveryWorkload executes the Figure-4-style coupled workload over a TCP
// router with checkpointing on. With crash set, the importer framework is torn
// down after step recCrashAt (its processes just vanish from the exporter's
// point of view) and a fresh incarnation restores from the last checkpoint,
// rejoins, and finishes the workload.
func runRecoveryWorkload(t *testing.T, crash bool) map[string][][]float64 {
	t.Helper()
	router, err := transport.StartTCPRouter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	expLayout, err := decomp.NewRowBlock(recGrid, recGrid, 2)
	if err != nil {
		t.Fatal(err)
	}
	impLayout, err := decomp.NewColBlock(recGrid, recGrid, 2)
	if err != nil {
		t.Fatal(err)
	}

	store := recover.NewMemStore()
	rec := &recRecorder{data: make(map[string][][]float64)}
	done := make(chan struct{})
	var doneOnce sync.Once
	finish := func() { doneOnce.Do(func() { close(done) }) }
	defer finish()

	expErr := make(chan error, 1)
	go func() {
		expErr <- joinRecovery(router.ListenAddr(), "E", expLayout, store, false, 0,
			func(prog *Program) error { return recExports(prog, done) })
	}()

	impTo := recSteps
	if crash {
		impTo = recCrashAt
	}
	err = joinRecovery(router.ListenAddr(), "I", impLayout, store, false, 0,
		func(prog *Program) error { return recImports(prog, 1, impTo, rec) })
	if err != nil {
		t.Fatal(err)
	}

	if crash {
		// The first incarnation is gone (its framework and transport are
		// closed). Restart: the application loads the checkpoint to learn the
		// restart epoch, builds its transport session under that epoch, and
		// resumes the collective sequence right after the checkpointed step.
		ck, err := store.Load("I")
		if err != nil {
			t.Fatal(err)
		}
		if ck == nil {
			t.Fatal("no checkpoint saved before the crash")
		}
		wantSeq := uint64(recCrashAt - recCrashAt%recCkEvery)
		if ck.Seq != wantSeq {
			t.Fatalf("checkpoint at seq %d, want %d", ck.Seq, wantSeq)
		}
		err = joinRecovery(router.ListenAddr(), "I", impLayout, store, true, ck.Epoch+1,
			func(prog *Program) error {
				seq, ok := prog.RestoredSeq()
				if !ok {
					return fmt.Errorf("restore did not surface the checkpoint")
				}
				if seq != wantSeq {
					return fmt.Errorf("restored seq %d, want %d", seq, wantSeq)
				}
				if prog.Epoch() != ck.Epoch+1 {
					return fmt.Errorf("restart epoch %d, want %d", prog.Epoch(), ck.Epoch+1)
				}
				return recImports(prog, int(seq)+1, recSteps, rec)
			})
		if err != nil {
			t.Fatal(err)
		}
	}

	finish()
	if err := <-expErr; err != nil {
		t.Fatal(err)
	}
	return rec.data
}

// TestRecoveryImporterRestart is the end-to-end crash-recovery acceptance
// check: kill the importer mid-run (between two checkpoints, so one completed
// step must be re-executed), restart it from its checkpoint, and require
// every imported block of the recovered run — including the replayed steps —
// to be byte-identical to a fault-free run of the same workload.
func TestRecoveryImporterRestart(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	baseline := runRecoveryWorkload(t, false)
	recovered := runRecoveryWorkload(t, true)

	if len(baseline) != 2*recSteps {
		t.Fatalf("baseline recorded %d imports, want %d", len(baseline), 2*recSteps)
	}
	for key, want := range baseline {
		if len(want) != 1 {
			t.Fatalf("baseline delivered import %s %d times", key, len(want))
		}
		got, ok := recovered[key]
		if !ok {
			t.Fatalf("recovered run never delivered import %s", key)
		}
		for i, d := range got {
			if len(d) != len(want[0]) {
				t.Fatalf("import %s copy %d: %d values, want %d", key, i, len(d), len(want[0]))
			}
			for j := range d {
				if d[j] != want[0][j] {
					t.Fatalf("import %s copy %d differs from fault-free run at %d: %v != %v",
						key, i, j, d[j], want[0][j])
				}
			}
		}
	}
	// The step between the checkpoint and the crash is delivered twice — once
	// by each incarnation — and both deliveries checked identical above.
	for r := 0; r < 2; r++ {
		key := fmt.Sprintf("%d/%d", r, recCrashAt)
		if n := len(recovered[key]); n != 2 {
			t.Fatalf("replayed step %s delivered %d times, want 2 (crash + replay)", key, n)
		}
	}
}
