package core

import "sync/atomic"

// ProtocolStats counts the control-plane and data-plane messages a program
// exchanged, quantifying the paper's description of the rep as a
// "low-overhead control gateway": per import request the control cost is one
// request, n forwards, >= n responses, one answer (plus its fan-out) and at
// most n-1 buddy-help messages, independent of the data volume.
type ProtocolStats struct {
	// ImportCalls counts collective import calls received by the rep from
	// its own processes (importer side).
	ImportCalls uint64
	// RequestsForwarded counts requests fanned out to the program's
	// processes (exporter side).
	RequestsForwarded uint64
	// Responses counts matching responses received from the program's
	// processes (exporter side; includes PENDING updates).
	Responses uint64
	// AnswersSent counts final answers sent to importing reps (exporter
	// side); AnswersDelivered counts answers fanned out to the program's own
	// processes (importer side).
	AnswersSent, AnswersDelivered uint64
	// BuddyMessages counts buddy-help messages sent to this program's
	// processes (exporter side; zero when the optimization is off).
	BuddyMessages uint64
	// DataMessages counts matched-data pieces sent by this program's
	// processes.
	DataMessages uint64
	// DataDropped counts data frames discarded because their connection key
	// is unknown to the receiver — stragglers that outlived a peer's
	// teardown (evictPeer) or duplicates from a faulty transport. They are
	// counted rather than treated as protocol violations.
	DataDropped uint64
}

// protoCounters is the internal atomic mirror of ProtocolStats.
type protoCounters struct {
	importCalls, requestsForwarded, responses  atomic.Uint64
	answersSent, answersDelivered, buddy, data atomic.Uint64
	dataDropped                                atomic.Uint64
}

func (c *protoCounters) snapshot() ProtocolStats {
	return ProtocolStats{
		ImportCalls:       c.importCalls.Load(),
		RequestsForwarded: c.requestsForwarded.Load(),
		Responses:         c.responses.Load(),
		AnswersSent:       c.answersSent.Load(),
		AnswersDelivered:  c.answersDelivered.Load(),
		BuddyMessages:     c.buddy.Load(),
		DataMessages:      c.data.Load(),
		DataDropped:       c.dataDropped.Load(),
	}
}

// ProtocolStats returns a snapshot of the program's message counters.
func (p *Program) ProtocolStats() ProtocolStats { return p.proto.snapshot() }
