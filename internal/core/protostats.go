package core

import "repro/internal/obsv"

// ProtocolStats counts the control-plane and data-plane messages a program
// exchanged, quantifying the paper's description of the rep as a
// "low-overhead control gateway": per import request the control cost is one
// request, n forwards, >= n responses, one answer (plus its fan-out) and at
// most n-1 buddy-help messages, independent of the data volume.
//
// It is a point-in-time view assembled from the observability registry
// (internal/obsv) — the instruments are the single counting path; this
// struct only snapshots them for tests and reports.
type ProtocolStats struct {
	// ImportCalls counts collective import calls received by the rep from
	// its own processes (importer side).
	ImportCalls uint64
	// RequestsForwarded counts requests fanned out to the program's
	// processes (exporter side).
	RequestsForwarded uint64
	// Responses counts matching responses received from the program's
	// processes (exporter side; includes PENDING updates).
	Responses uint64
	// AnswersSent counts final answers sent to importing reps (exporter
	// side); AnswersDelivered counts answers fanned out to the program's own
	// processes (importer side).
	AnswersSent, AnswersDelivered uint64
	// BuddyMessages counts buddy-help messages sent to this program's
	// processes (exporter side; zero when the optimization is off).
	BuddyMessages uint64
	// DataMessages counts matched-data pieces sent by this program's
	// processes.
	DataMessages uint64
	// DataDropped counts data frames discarded because their connection key
	// is unknown to the receiver — stragglers that outlived a peer's
	// teardown (evictPeer) or duplicates from a faulty transport. They are
	// counted rather than treated as protocol violations.
	DataDropped uint64
}

// protoCounters holds the program's protocol instruments, preallocated from
// the registry at program construction so the hot paths never perform a
// registry lookup. Data-plane sends are counted once, per connection
// pipeline (exportConn.dataSends); DataMessages sums them at snapshot time.
type protoCounters struct {
	importCalls, requestsForwarded, responses *obsv.Counter
	answersSent, answersDelivered, buddy      *obsv.Counter
	dataDropped, peerDown, evictions          *obsv.Counter
}

func newProtoCounters(reg *obsv.Registry, program string) protoCounters {
	l := obsv.L("program", program)
	return protoCounters{
		importCalls:       reg.Counter("core.import.calls", l),
		requestsForwarded: reg.Counter("core.requests.forwarded", l),
		responses:         reg.Counter("core.responses", l),
		answersSent:       reg.Counter("core.answers.sent", l),
		answersDelivered:  reg.Counter("core.answers.delivered", l),
		buddy:             reg.Counter("core.buddy.messages", l),
		dataDropped:       reg.Counter("core.data.dropped", l),
		peerDown:          reg.Counter("core.peer.down", l),
		evictions:         reg.Counter("core.peer.evictions", l),
	}
}

// ProtocolStats returns a snapshot of the program's message counters.
func (p *Program) ProtocolStats() ProtocolStats {
	var data uint64
	for _, proc := range p.procs {
		for _, st := range proc.exps {
			for _, ec := range st.conns {
				data += ec.dataSends.Load()
			}
		}
	}
	return ProtocolStats{
		ImportCalls:       p.proto.importCalls.Load(),
		RequestsForwarded: p.proto.requestsForwarded.Load(),
		Responses:         p.proto.responses.Load(),
		AnswersSent:       p.proto.answersSent.Load(),
		AnswersDelivered:  p.proto.answersDelivered.Load(),
		BuddyMessages:     p.proto.buddy.Load(),
		DataMessages:      data,
		DataDropped:       p.proto.dataDropped.Load(),
	}
}

// Evictions returns how many buffered export versions the program dropped
// because a coupled peer died (heartbeat expiry or failure announcement).
func (p *Program) Evictions() uint64 { return p.proto.evictions.Load() }
