package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/wire"
)

// connKey names a connection uniquely: "P0.r1>P1.r1".
func connKey(exp, imp string) string { return exp + ">" + imp }

// coupledWindow returns the sub-rectangle a connection transfers: its
// configured window, or the whole array when none was given.
func coupledWindow(cc config.Connection, l decomp.Layout) decomp.Rect {
	if cc.Windowed() {
		return cc.Window
	}
	return decomp.Bounds(l)
}

// layoutMsg announces one region's layout during the rep-to-rep handshake
// and the rep-to-process fan-out.
type layoutMsg struct {
	Conn   string // connection key
	Region string // region name on the RECEIVING side
	Remote decomp.Spec
	Local  decomp.Spec
	// IsReply marks the mutual half of the handshake. Every non-reply
	// announcement is answered with a reply (never the other way around, which
	// would loop), so a peer that restarts and re-announces always gets our
	// layout again — processes deduplicate repeats.
	IsReply bool
}

// Recovery control-message tags (KindControl).
const (
	rejoinTag  = "rejoin"  // restarted rep -> peer reps: rejoinMsg
	releaseTag = "release" // importer proc -> exporter rep -> procs: releaseMsg
	resendTag  = "resend"  // exporter rep -> own procs: requestMsg to re-send data for
)

// rejoinMsg is a restarted program re-introducing itself to a peer rep. It
// names the restart epoch (which also keys the transport session reset) and,
// per connection, where replay must resume.
type rejoinMsg struct {
	// Epoch is the restarted incarnation's epoch (checkpoint epoch + 1).
	Epoch uint64
	// Exports maps connection keys this program exports on to the resume
	// request id: the minimum request count across its restored ranks. The
	// importing peer re-sends every request from min(resume, delivered).
	Exports map[string]int
	// Imports maps connection keys this program imports on to the number of
	// import calls its checkpoint covers (the next request id it will issue).
	Imports map[string]int
}

// releaseMsg is a checkpoint acknowledgement travelling importer process ->
// exporter rep (and fanned to the exporter's processes): every request with
// id < Through is covered by a durable importer checkpoint, so the matched
// versions retained for post-crash resync can be freed.
type releaseMsg struct {
	Conn    string
	Through int
}

// importCallMsg is an importer process entering a collective import.
type importCallMsg struct {
	Region string
	ReqTS  float64
}

// requestMsg is an import request travelling importer-rep -> exporter-rep,
// and exporter-rep -> exporter processes (KindForward).
type requestMsg struct {
	Conn  string
	ReqID int
	ReqTS float64
}

// responseMsg is an exporter process's (possibly repeated) reply to a
// forwarded request.
type responseMsg struct {
	Conn    string
	ReqID   int
	ReqTS   float64
	Rank    int
	Result  match.Result
	MatchTS float64
	Latest  float64
}

// answerMsg is the final collective answer: exporter-rep -> importer-rep,
// then importer-rep -> importer processes. The same shape serves buddy-help
// messages (exporter-rep -> pending exporter processes).
type answerMsg struct {
	Conn    string
	Region  string // import region name (filled by the importer rep fan-out)
	ReqID   int
	ReqTS   float64
	Result  match.Result
	MatchTS float64

	// flow is the observability trace ID of the request this answers. It is
	// unexported on purpose: gob never serializes it, so it travels on the
	// wire only via Message.Trace and is re-attached by the receiver.
	flow uint64
}

// errorMsg aborts a program when its rep detects a violation.
type errorMsg struct {
	Text string
}

// dataMsg header layout (binary, little-endian), followed by raw float64s:
//
//	reqID   int64
//	matchTS float64
//	r0,c0,r1,c1 int64 (the global sub-rectangle)
const dataHeaderSize = 8 * 6

// encodeData builds a KindData payload from a packed sub-rectangle.
func encodeData(reqID int, matchTS float64, sub decomp.Rect, vals []float64) []byte {
	buf := make([]byte, 0, dataHeaderSize+wire.Float64sSize(len(vals)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(reqID)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(matchTS))
	for _, v := range []int{sub.R0, sub.C0, sub.R1, sub.C1} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	return wire.AppendFloat64s(buf, vals)
}

// decodeData parses a KindData payload.
func decodeData(b []byte) (reqID int, matchTS float64, sub decomp.Rect, vals []float64, err error) {
	if len(b) < dataHeaderSize {
		return 0, 0, decomp.Rect{}, nil, fmt.Errorf("core: data message of %d bytes", len(b))
	}
	reqID = int(int64(binary.LittleEndian.Uint64(b)))
	matchTS = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	sub = decomp.NewRect(
		int(int64(binary.LittleEndian.Uint64(b[16:]))),
		int(int64(binary.LittleEndian.Uint64(b[24:]))),
		int(int64(binary.LittleEndian.Uint64(b[32:]))),
		int(int64(binary.LittleEndian.Uint64(b[40:]))),
	)
	vals, err = wire.DecodeFloat64s(b[dataHeaderSize:])
	if err != nil {
		return 0, 0, decomp.Rect{}, nil, err
	}
	if len(vals) != sub.Area() {
		return 0, 0, decomp.Rect{}, nil,
			fmt.Errorf("core: data message carries %d values for %v (%d cells)", len(vals), sub, sub.Area())
	}
	return reqID, matchTS, sub, vals, nil
}
