package core

import (
	"errors"
	"repro/internal/testutil"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// TestFiniteBufferPropagates: with Options.BufferMaxBytes too small for the
// live objects, the exporting process's Export fails with ErrBufferFull and
// the framework reports the error.
func TestFiniteBufferPropagates(t *testing.T) {
	cfg, err := config.ParseString("E local b 1\nI local b 1\n#\nE.d I.d REGL 1\n")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(cfg, Options{
		Timeout:        5 * time.Second,
		BufferMaxBytes: 8 * 16 * 2, // room for two 4x4 versions
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, _ := decomp.NewRowBlock(4, 4, 1)
	f.MustProgram("E").DefineRegion("d", l)
	f.MustProgram("I").DefineRegion("d", l)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	p := f.MustProgram("E").Process(0)
	data := make([]float64, 16)
	var got error
	for k := 1; k <= 10; k++ {
		if got = p.Export("d", float64(k), data); got != nil {
			break
		}
	}
	if !errors.Is(got, buffer.ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", got)
	}
	if f.Err() == nil {
		t.Error("framework did not record the failure")
	}
}

// TestCloseUnblocksImport: closing the framework mid-import fails the
// blocked call promptly instead of hanging until the timeout.
func TestCloseUnblocksImport(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 30 * time.Second}, 1, 1, 4, "REGL 1")
	p := f.MustProgram("I").Process(0)
	dst := make([]float64, 16)
	done := make(chan error, 1)
	go func() {
		_, err := p.Import("d", 10, dst) // nothing exported: blocks
		done <- err
	}()
	testutil.Sleep(20 * time.Millisecond)
	f.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("import succeeded after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("import did not unblock on Close")
	}
}

// TestExportAfterFailureFails: once a program failed, subsequent collective
// calls fail fast with the recorded error.
func TestExportAfterFailureFails(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 5 * time.Second}, 1, 2, 4, "REGL 1")
	imp := f.MustProgram("I")
	// Trip a Property-1 violation on the importer.
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := make([]float64, 8)
			imp.Process(r).Import("d", float64(10+r), dst)
		}(r)
	}
	wg.Wait()
	if f.Err() == nil {
		t.Fatal("violation not recorded")
	}
	dst := make([]float64, 8)
	if _, err := imp.Process(0).Import("d", 30, dst); err == nil {
		t.Error("import after failure succeeded")
	}
}

// TestExporterDecreasingTimestampFails: the model requires increasing export
// timestamps; the violation surfaces as an Export error.
func TestExporterDecreasingTimestampFails(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 5 * time.Second}, 1, 1, 4, "REGL 1")
	p := f.MustProgram("E").Process(0)
	data := make([]float64, 16)
	if err := p.Export("d", 5, data); err != nil {
		t.Fatal(err)
	}
	err := p.Export("d", 4, data)
	if err == nil || !strings.Contains(err.Error(), "not greater") {
		t.Errorf("decreasing export: %v", err)
	}
}

// TestImportWrongSizeFails: a destination buffer that does not match the
// local block is rejected before any protocol traffic.
func TestImportWrongSizeFails(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 5 * time.Second}, 1, 1, 4, "REGL 1")
	p := f.MustProgram("I").Process(0)
	if _, err := p.Import("d", 1, make([]float64, 3)); err == nil {
		t.Error("wrong-size import accepted")
	}
	pe := f.MustProgram("E").Process(0)
	if err := pe.Export("d", 1, make([]float64, 3)); err == nil {
		t.Error("wrong-size export accepted")
	}
}

// TestImportTimeoutTyped: an Import that times out waiting for the exporter
// reports a transport.ErrTimeout-matching error naming the peer rep, so
// callers can distinguish "peer too slow / gone" from protocol violations.
func TestImportTimeoutTyped(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 300 * time.Millisecond}, 1, 1, 4, "REGL 1")
	p := f.MustProgram("I").Process(0)
	dst := make([]float64, 16)
	_, err := p.Import("d", 10, dst) // nothing exported: the answer never comes
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want errors.Is(err, transport.ErrTimeout)", err)
	}
	if !strings.Contains(err.Error(), "E:rep") {
		t.Errorf("timeout error does not name the peer rep: %v", err)
	}
}

// TestPeerDownErrorIs: every PeerDownError matches the ErrPeerDown sentinel
// and renders its cause.
func TestPeerDownErrorIs(t *testing.T) {
	silent := &PeerDownError{Peer: "E", Observer: "I", Silence: 1500 * time.Millisecond}
	if !errors.Is(silent, ErrPeerDown) {
		t.Error("silence-declared PeerDownError does not match ErrPeerDown")
	}
	if !strings.Contains(silent.Error(), "E") || !strings.Contains(silent.Error(), "1.5s") {
		t.Errorf("silent error text: %v", silent)
	}
	announced := &PeerDownError{Peer: "E", Observer: "I", Cause: "boom"}
	if !errors.Is(announced, ErrPeerDown) || !strings.Contains(announced.Error(), "boom") {
		t.Errorf("announced error text: %v", announced)
	}
	if errors.Is(errors.New("other"), ErrPeerDown) {
		t.Error("unrelated error matches ErrPeerDown")
	}
}

// TestFailureDetector: leases expire only for peers heard from at least once,
// after 1.5x the interval, and each peer is declared once. Runs on a virtual
// clock: silence is simulated by advancing it, not by sleeping.
func TestFailureDetector(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	fd := newFailureDetector(40*time.Millisecond, clk)
	fd.touch("E")
	if exp := fd.expired(); len(exp) != 0 {
		t.Fatalf("fresh lease expired: %v", exp)
	}
	clk.Advance(70 * time.Millisecond) // > 1.5 x 40ms
	exp := fd.expired()
	if _, ok := exp["E"]; !ok || len(exp) != 1 {
		t.Fatalf("expired = %v, want E", exp)
	}
	if exp := fd.expired(); len(exp) != 0 {
		t.Fatalf("peer declared twice: %v", exp)
	}
	// A peer never heard from is not judged.
	if exp := fd.expired(); len(exp) != 0 {
		t.Fatalf("unseen peer declared: %v", exp)
	}
}

// TestFailureAnnounceEvictsBuffers: with heartbeats on, a program that fails
// announces it; the peer program fails with ErrPeerDown and evicts the export
// buffers it held for the dead importer.
func TestFailureAnnounceEvictsBuffers(t *testing.T) {
	f := buildCoupling(t, Options{
		Timeout:   5 * time.Second,
		Heartbeat: 50 * time.Millisecond,
	}, 1, 2, 4, "REGL 1")
	progE, progI := f.MustProgram("E"), f.MustProgram("I")
	pe := progE.Process(0)
	data := make([]float64, 16)
	for k := 1; k <= 3; k++ {
		if err := pe.Export("d", float64(k), data); err != nil {
			t.Fatal(err)
		}
	}
	held, err := pe.BufferedBytes("d")
	if err != nil {
		t.Fatal(err)
	}
	if held == 0 {
		t.Fatal("no buffered versions to evict")
	}
	// Trip a Property-1 violation on the importer: it fails and announces.
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := make([]float64, 8)
			progI.Process(r).Import("d", float64(10+r), dst)
		}(r)
	}
	wg.Wait()
	deadline := testutil.Now().Add(5 * time.Second)
	for {
		if err := progE.err(); errors.Is(err, ErrPeerDown) {
			break
		}
		if testutil.Now().After(deadline) {
			t.Fatalf("exporter never learned of the peer failure (err = %v)", progE.err())
		}
		testutil.Sleep(5 * time.Millisecond)
	}
	for {
		held, err := pe.BufferedBytes("d")
		if err != nil {
			t.Fatal(err)
		}
		if held == 0 {
			break
		}
		if testutil.Now().After(deadline) {
			t.Fatalf("dead importer's buffers not evicted: %d bytes held", held)
		}
		testutil.Sleep(5 * time.Millisecond)
	}
}

// TestDoubleStartRejected: Start is not idempotent by design.
func TestDoubleStartRejected(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 5 * time.Second}, 1, 1, 4, "REGL 1")
	if err := f.Start(); err == nil {
		t.Error("second Start succeeded")
	}
}
