package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// joinWith is joinProgram with caller-controlled Options (Network is set
// here) and a hook exposing the framework, for tests that kill or inspect
// one side mid-run.
func joinWith(router string, name string, layout decomp.Layout, opts Options,
	wrap func(transport.Network) transport.Network,
	started func(fw *Framework), app func(prog *Program) error) error {
	cfg, err := config.ParseString(distributedCfg)
	if err != nil {
		return err
	}
	var net transport.Network = transport.NewTCPNetwork(router)
	if wrap != nil {
		net = wrap(net)
	}
	opts.Network = net
	fw, err := Join(cfg, name, opts)
	if err != nil {
		net.Close()
		return err
	}
	defer fw.Close()
	prog, err := fw.Local()
	if err != nil {
		return err
	}
	if err := prog.DefineRegion("d", layout); err != nil {
		return err
	}
	if err := fw.Start(); err != nil {
		return err
	}
	if started != nil {
		started(fw)
	}
	return app(prog)
}

// TestCloseReleasesGoroutinesMem: a full coupled run on the in-memory
// network leaves no goroutines behind after Framework.Close (the TCP
// equivalent is asserted by the leak checks on the distributed tests).
func TestCloseReleasesGoroutinesMem(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	f := buildCoupling(t, Options{Timeout: 10 * time.Second, Heartbeat: 100 * time.Millisecond}, 2, 2, 8, "REGL 1")
	progE, progI := f.MustProgram("E"), f.MustProgram("I")
	done := make(chan error, 4)
	for r := 0; r < 2; r++ {
		go func(r int) {
			p := progE.Process(r)
			block, _ := p.Block("d")
			for k := 1; k <= 10; k++ {
				if err := p.Export("d", float64(k)+0.5, fillBlock(block, float64(k)+0.5)); err != nil {
					done <- err
					return
				}
			}
			done <- p.FinishRegion("d")
		}(r)
		go func(r int) {
			p := progI.Process(r)
			block, _ := p.Block("d")
			dst := make([]float64, block.Area())
			_, err := p.Import("d", 5, dst)
			done <- err
		}(r)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestTCPPeerDownUnblocksImport kills the exporter framework while the
// importer's collective Import is blocked waiting for an answer: with
// heartbeats on, the blocked calls must return an ErrPeerDown-matching error
// within ~2x the heartbeat interval instead of hanging until the blanket
// timeout.
func TestTCPPeerDownUnblocksImport(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	router, err := transport.StartTCPRouter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	const hb = 250 * time.Millisecond
	const size = 8
	le, _ := decomp.NewRowBlock(size, size, 2)
	li, _ := decomp.NewColBlock(size, size, 2)
	opts := Options{Timeout: 60 * time.Second, Heartbeat: hb}

	exporterUp := make(chan *Framework, 1)
	exporterKilled := make(chan struct{})
	exporterDone := make(chan error, 1)
	go func() {
		exporterDone <- joinWith(router.ListenAddr(), "E", le, opts, nil,
			func(fw *Framework) { exporterUp <- fw },
			func(prog *Program) error {
				// Export nothing: the importer's request stays PENDING. Hold
				// the framework open until the test kills it.
				select {
				case <-exporterKilled:
				case <-time.After(30 * time.Second):
				}
				return nil
			})
	}()

	importerDone := make(chan error, 1)
	var killed time.Time
	var killMu sync.Mutex
	go func() {
		importerDone <- joinWith(router.ListenAddr(), "I", li, opts, nil, nil,
			func(prog *Program) error {
				// Kill the exporter once both sides are up and the imports are
				// in flight.
				go func() {
					fw := <-exporterUp
					testutil.Sleep(200 * time.Millisecond)
					killMu.Lock()
					killed = testutil.Now()
					killMu.Unlock()
					fw.Close()
					close(exporterKilled)
				}()
				var wg sync.WaitGroup
				errs := make([]error, prog.Procs())
				for r := 0; r < prog.Procs(); r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						p := prog.Process(r)
						block, _ := p.Block("d")
						dst := make([]float64, block.Area())
						_, errs[r] = p.Import("d", 10, dst)
					}(r)
				}
				wg.Wait()
				for r, err := range errs {
					if !errors.Is(err, ErrPeerDown) {
						return fmt.Errorf("rank %d: err = %v, want ErrPeerDown", r, err)
					}
				}
				return nil
			})
	}()

	select {
	case err := <-importerDone:
		killMu.Lock()
		elapsed := time.Since(killed)
		killMu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		// The acceptance bound is 2x the heartbeat interval; allow scheduling
		// slack on loaded CI machines.
		if limit := 2*hb + 1500*time.Millisecond; elapsed > limit {
			t.Errorf("peer death detected after %v, want <= %v", elapsed, limit)
		}
		t.Logf("blocked imports failed %v after the peer died", elapsed)
	case <-time.After(30 * time.Second):
		t.Fatal("importer hung after the exporter died")
	}
	if err := <-exporterDone; err != nil {
		t.Fatal(err)
	}
}

// TestTCPCouplingSurvivesReset runs the full distributed coupling over the
// reliable layer on a reconnecting TCP network and injects a connection reset
// mid-run: the reliable layer must replay what the dead socket swallowed —
// exactly once, or the reps' duplicate detection fails the run — and the
// coupling must complete with correct match results.
func TestTCPCouplingSurvivesReset(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	router, err := transport.StartTCPRouter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	const size = 8
	const exports = 30
	const matchEvery = 10
	le, _ := decomp.NewRowBlock(size, size, 2)
	li, _ := decomp.NewColBlock(size, size, 2)
	opts := Options{Timeout: 60 * time.Second, Heartbeat: time.Second}

	errs := make(chan error, 2)
	go func() {
		errs <- joinWith(router.ListenAddr(), "E", le, opts,
			func(n transport.Network) transport.Network {
				tcp := n.(*transport.TCPNetwork)
				tcp.MaxRetries = 20
				tcp.RetryBase = 5 * time.Millisecond
				go func() {
					// One injected reset mid-run, after traffic is flowing.
					testutil.Sleep(250 * time.Millisecond)
					tcp.ResetConnections()
				}()
				return transport.NewReliableNetwork(tcp, transport.ReliableConfig{
					ResendInterval: 15 * time.Millisecond,
				})
			}, nil,
			func(prog *Program) error {
				var wg sync.WaitGroup
				perr := make([]error, prog.Procs())
				for r := 0; r < prog.Procs(); r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						p := prog.Process(r)
						block, _ := p.Block("d")
						for k := 1; k <= exports; k++ {
							ts := float64(k) + 0.6
							if err := p.Export("d", ts, fillBlock(block, ts)); err != nil {
								perr[r] = err
								return
							}
							testutil.Sleep(10 * time.Millisecond) // spread the stream across the reset
						}
						perr[r] = p.FinishRegion("d")
					}(r)
				}
				wg.Wait()
				for _, e := range perr {
					if e != nil {
						return e
					}
				}
				// Stay alive until every importer request was served, then let
				// the in-flight data pieces drain before tearing down (shutdown
				// coordination is application-level, as in TestDistributedCoupling).
				deadline := testutil.Now().Add(30 * time.Second)
				for {
					served := true
					for r := 0; r < prog.Procs(); r++ {
						stats, err := prog.Process(r).ExportStats("d")
						if err != nil {
							return err
						}
						if stats["I.d"].Sends < exports/matchEvery {
							served = false
						}
					}
					if served {
						break
					}
					if testutil.Now().After(deadline) {
						return fmt.Errorf("importer never collected all matches")
					}
					testutil.Sleep(5 * time.Millisecond)
				}
				testutil.Sleep(300 * time.Millisecond) // let reliable-layer resends deliver the tail
				return prog.fw.Err()
			})
	}()
	go func() {
		errs <- joinWith(router.ListenAddr(), "I", li, opts,
			func(n transport.Network) transport.Network {
				tcp := n.(*transport.TCPNetwork)
				tcp.MaxRetries = 20
				tcp.RetryBase = 5 * time.Millisecond
				return transport.NewReliableNetwork(tcp, transport.ReliableConfig{
					ResendInterval: 15 * time.Millisecond,
				})
			}, nil,
			func(prog *Program) error {
				var wg sync.WaitGroup
				perr := make([]error, prog.Procs())
				for r := 0; r < prog.Procs(); r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						p := prog.Process(r)
						block, _ := p.Block("d")
						dst := make([]float64, block.Area())
						for j := 1; j <= exports/matchEvery; j++ {
							reqTS := float64(j * matchEvery)
							res, err := p.Import("d", reqTS, dst)
							if err != nil {
								perr[r] = err
								return
							}
							wantTS := float64(j*matchEvery-1) + 0.6
							if !res.Matched || res.MatchTS != wantTS {
								perr[r] = fmt.Errorf("import @%g resolved %+v, want match @%g", reqTS, res, wantTS)
								return
							}
							g := decomp.Grid{Block: block, Data: dst}
							if got, want := g.At(block.R0, block.C0), cell(wantTS, block.R0, block.C0); got != want {
								perr[r] = fmt.Errorf("data corrupt after reset: got %v, want %v", got, want)
								return
							}
						}
					}(r)
				}
				wg.Wait()
				for _, e := range perr {
					if e != nil {
						return e
					}
				}
				return prog.fw.Err()
			})
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("coupling hung after the injected connection reset")
		}
	}
}
