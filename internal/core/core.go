// Package core implements the paper's contribution: a loosely coupled
// framework for parallel simulation components with approximate temporal
// matching and the buddy-help optimization (Wu & Sussman, IPPS 2007).
//
// A Framework hosts a set of named parallel programs (each a group of
// goroutine "processes" plus one representative) wired together by a
// configuration (package config). Programs define distributed regions, then
// their processes call the collective operations Export and Import; the
// framework buffers exported versions (package buffer), resolves import
// requests through per-program representatives (package rep), moves matched
// data along MxN redistribution schedules (package decomp), and — when
// Options.BuddyHelp is on — lets the fastest exporter process's decision
// spare its slower peers from unnecessary buffering.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/obsv"
	"repro/internal/obsv/diag"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// DefaultTimeout bounds blocking framework waits (import answers, data
// pieces, startup handshakes).
const DefaultTimeout = 60 * time.Second

// DefaultExportQueueDepth is the per-connection pipeline queue bound when
// Options.ExportQueueDepth is zero: how many resolution/send jobs may be in
// flight before Export blocks (backpressure).
const DefaultExportQueueDepth = 64

// exportQueueDepth resolves Options.ExportQueueDepth.
func (o *Options) exportQueueDepth() int {
	if o.ExportQueueDepth > 0 {
		return o.ExportQueueDepth
	}
	return DefaultExportQueueDepth
}

// exportWorkers resolves Options.ExportWorkers: min(4, GOMAXPROCS) unless
// set, so small machines don't oversubscribe and big ones don't spawn a
// goroutine per importer rank.
func (o *Options) exportWorkers() int {
	if o.ExportWorkers > 0 {
		return o.ExportWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Options tunes a Framework.
type Options struct {
	// Network supplies the transport; nil means a fresh in-memory network.
	Network transport.Network
	// BuddyHelp enables the paper's optimization: representatives send the
	// final match answer to processes whose response was PENDING.
	BuddyHelp bool
	// Trace enables per-process paper-style event logs.
	Trace bool
	// BufferMaxBytes bounds each per-connection export buffer (0 = unbounded).
	BufferMaxBytes int64
	// Coalesce, when non-nil, wraps the transport in a CoalescingNetwork so
	// same-destination control messages share frames (see
	// transport.CoalesceConfig; a Disabled config still counts frames, which
	// is how baseline runs measure their frame traffic). FrameStats exposes
	// the layer's counters.
	Coalesce *transport.CoalesceConfig
	// Timeout bounds blocking waits; 0 means DefaultTimeout.
	Timeout time.Duration
	// SyncDataPlane disables the asynchronous export data plane: Export then
	// performs responses, packing, transport sends and transfer accounting
	// inline on the application goroutine, serially per connection — the
	// pre-overlap behaviour. It exists as the measured baseline for the
	// overlap benchmark and as an escape hatch; the default (false) queues
	// that work to per-connection sender goroutines so Export returns to the
	// compute loop immediately.
	SyncDataPlane bool
	// ExportQueueDepth bounds each export connection's pipeline queue (jobs
	// in flight before Export blocks for backpressure). 0 means
	// DefaultExportQueueDepth.
	ExportQueueDepth int
	// ExportWorkers bounds the concurrent per-destination-rank transfers of
	// one matched-data fan-out. 0 means DefaultExportWorkers (min(4,
	// GOMAXPROCS)); 1 keeps the fan-out serial on the sender goroutine.
	ExportWorkers int
	// Obsv supplies the runtime observability layer (metrics registry, span
	// tracer, /statusz sections). nil means a private registry-only observer:
	// the instruments are always the single counting path, tracing is off,
	// and nothing is served. Pass an observer with a Tracer (obsv.Config
	// {Tracing: true}) to record protocol spans and piggyback trace IDs on
	// the wire; pass the same observer to obsv.Serve to introspect the run.
	Obsv *obsv.Observer
	// Heartbeat enables peer-failure detection between representatives: reps
	// beacon every Heartbeat/2 and declare a previously-seen peer dead after
	// silence beyond 1.5x the interval, so failures surface within 2x
	// Heartbeat. A declared-dead peer fails the program with an error matching
	// ErrPeerDown (errors.Is), unblocking Export/Import promptly, evicting
	// export buffers held for the dead peer, and announcing the failure to the
	// remaining peers. 0 disables detection (the default): the blanket Timeout
	// is then the only guard against a vanished peer. With Recovery enabled, a
	// declared-dead peer suspends the program instead of failing it — the
	// rejoin handshake revives the coupling when the peer restarts.
	Heartbeat time.Duration
	// Recovery enables collective-sequence checkpointing and crash recovery
	// (see RecoveryOptions). nil disables it.
	Recovery *RecoveryOptions
	// Clock supplies the framework's time source — heartbeat leases, startup
	// deadlines, stall accounting, checkpoint timing (nil = wall clock). The
	// deterministic simulation harness injects a virtual clock; note the
	// transport layers take their own clocks via their configs.
	Clock vclock.Clock
	// CheckedPools turns on buffer-pool ownership checking (buffer.Pool
	// SetChecked) in every hosted process: double frees are recorded instead
	// of corrupting freelists, and PoolViolations reports them. Simulation
	// harness only — it costs a map operation per pooled Get/Put.
	CheckedPools bool
	// Diag enables coupling-aware diagnosis: every hosted program gets a
	// straggler board fed by per-collective critical-path attribution
	// (collective payloads grow a 16-byte trailer; see package collective)
	// and a crash-safe flight recorder of protocol events. Surfaced as the
	// collective.<op>.straggler.* instruments, the /diag/stragglers endpoint
	// and a diag: block in /statusz; DumpFlight (and peer-death detection)
	// writes the flight rings to FlightDir. Off by default — the collective
	// hot path then keeps its 0 allocs/op guarantee.
	Diag bool
	// FlightDir is where flight-recorder dumps are written ("" = the OS temp
	// directory). Only meaningful with Diag.
	FlightDir string
	// FlightEvents sizes each program's flight-recorder ring (0 =
	// diag.DefaultEvents). Only meaningful with Diag.
	FlightEvents int
}

// Framework hosts one coupled run — either every program of the
// configuration (New, the single-process mode used by tests and benchmarks)
// or a single program joining its peers over a shared transport (Join, the
// distributed mode matching the paper's deployment of one binary per
// component).
type Framework struct {
	cfg  *config.Config
	opts Options
	net  transport.Network

	// local is the hosted program's name in distributed mode ("" = all).
	local    string
	programs map[string]*Program

	// coalesce is the coalescing layer when Options.Coalesce enabled one.
	coalesce *transport.CoalescingNetwork

	// obs is the observability layer (never nil — a private registry-only
	// observer is created when Options.Obsv is nil); tracer is obs.Tracer,
	// hoisted because the hot paths nil-check it.
	obs    *obsv.Observer
	tracer *obsv.Tracer

	mu      sync.Mutex
	started bool
	closed  bool
}

// statusName is this framework's /statusz section name.
func (f *Framework) statusName() string {
	if f.local != "" {
		return "coupling(" + f.local + ")"
	}
	return "coupling"
}

// initObsv resolves Options.Obsv (private registry-only observer when nil),
// bridges the coalescing layer's counters into the registry, and registers
// the framework's /statusz section.
func (f *Framework) initObsv() {
	f.obs = f.opts.Obsv
	if f.obs == nil {
		f.obs = obsv.New(obsv.Config{})
	}
	f.tracer = f.obs.Tracer
	if c := f.coalesce; c != nil {
		reg := f.obs.Registry
		reg.GaugeFunc("transport.frames.messages", func() float64 { return float64(c.Stats().Messages) })
		reg.GaugeFunc("transport.frames.sent", func() float64 { return float64(c.Stats().Frames) })
		reg.GaugeFunc("transport.frames.coalesced", func() float64 { return float64(c.Stats().Batched) })
		reg.GaugeFunc("transport.frames.batches", func() float64 { return float64(c.Stats().Batches) })
		reg.GaugeFunc("transport.frames.payload.bytes", func() float64 { return float64(c.Stats().PayloadBytes) })
	}
	// transport.decode_errors totals malformed input at every layer that
	// decodes wire bytes: TCP frames and coalescing batch envelopes.
	if t, c := findTCPNetwork(f.net), f.coalesce; t != nil || c != nil {
		f.obs.Registry.GaugeFunc("transport.decode_errors", func() float64 {
			var n float64
			if t != nil {
				n += float64(t.Stats().DecodeErrors)
			}
			if c != nil {
				n += float64(c.Stats().DecodeErrors)
			}
			return n
		})
	}
	if t := findTCPNetwork(f.net); t != nil {
		reg := f.obs.Registry
		reg.GaugeFunc("transport.reconnects", func() float64 { return float64(t.Stats().Reconnects) })
	}
	f.obs.AddStatus(f.statusName(), f.writeStatus)
}

// initDiag mounts the /diag/stragglers endpoint once the hosted programs —
// and so their straggler boards — exist. The boards slice is fixed at build
// time (the program set never changes after New/Join), so the per-request
// closure reads immutable state.
func (f *Framework) initDiag() {
	if !f.opts.Diag {
		return
	}
	boards := make([]*diag.Board, 0, len(f.programs))
	for _, p := range f.programs {
		boards = append(boards, p.board)
	}
	f.obs.Handle("/diag/stragglers", diag.Handler(5, func() []*diag.Board { return boards }))
}

// flightRecorders returns the hosted programs' flight recorders in name
// order (empty unless Options.Diag).
func (f *Framework) flightRecorders() []*diag.Recorder {
	names := make([]string, 0, len(f.programs))
	for name := range f.programs {
		names = append(names, name)
	}
	sort.Strings(names)
	var recs []*diag.Recorder
	for _, name := range names {
		if r := f.programs[name].flight; r != nil {
			recs = append(recs, r)
		}
	}
	return recs
}

// DumpFlight writes every hosted program's flight-recorder ring to
// Options.FlightDir ("" = the OS temp directory), one self-describing
// .cpfl file per program, and returns the file paths. Called on SIGQUIT by
// cmd/coupled; the framework itself also dumps on heartbeat-declared peer
// death. A no-op (nil, nil) unless Options.Diag.
func (f *Framework) DumpFlight(reason string) ([]string, error) {
	recs := f.flightRecorders()
	if len(recs) == 0 {
		return nil, nil
	}
	return diag.DumpAll(f.opts.FlightDir, reason, recs...)
}

// writeStatus renders the /statusz section: per-connection pipeline state of
// every hosted process and the heartbeat view of every hosted rep.
func (f *Framework) writeStatus(w io.Writer) {
	if t := findTCPNetwork(f.net); t != nil {
		s := t.Stats()
		fmt.Fprintf(w, "transport: reconnects=%d decode_errors=%d\n", s.Reconnects, s.DecodeErrors)
	}
	names := make([]string, 0, len(f.programs))
	for name := range f.programs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := f.programs[name]
		fmt.Fprintf(w, "program %s (%d procs)\n", name, p.n)
		if err := p.err(); err != nil {
			fmt.Fprintf(w, "  FAILED: %v\n", err)
		}
		for _, proc := range p.procs {
			regions := make([]string, 0, len(proc.exps))
			for region := range proc.exps {
				regions = append(regions, region)
			}
			sort.Strings(regions)
			for _, region := range regions {
				for _, ec := range proc.exps[region].conns {
					ps := ec.pipelineStats()
					fmt.Fprintf(w, "  %s %s depth=%d peak=%d jobs=%d sends=%d flushes=%d stall=%v\n",
						proc.addr(), ec.key, ps.QueueDepth, ps.PeakQueueDepth,
						ps.Jobs, ps.DataSends, ps.Flushes,
						time.Duration(ps.ExportStallNanos).Round(time.Microsecond))
				}
			}
		}
		// Per-op/per-algo collective timings (the histograms are shared by
		// every process of the program, so one comm's view covers all).
		if len(p.procs) > 0 {
			if ins := p.procs[0].Comm().Instruments(); ins != nil {
				var buf bytes.Buffer
				ins.WriteStatus(&buf)
				if buf.Len() > 0 {
					fmt.Fprintf(w, "  collectives:\n")
					w.Write(buf.Bytes())
				}
			}
		}
		if p.board != nil {
			fmt.Fprintf(w, "  diag:\n")
			p.board.WriteStatus(w)
		}
		if hb := f.opts.Heartbeat; hb > 0 {
			for _, st := range p.rep.fd.peers() {
				state := "alive"
				if st.Declared {
					state = "DOWN"
				}
				fmt.Fprintf(w, "  heartbeat peer %s: %s, last seen %v ago\n",
					st.Peer, state, st.Since.Round(time.Millisecond))
			}
		}
	}
}

// New builds a framework for a parsed coupling configuration. Every program
// in the configuration is instantiated with its configured process count;
// regions must be defined (Program.DefineRegion) before Start.
func New(cfg *config.Config, opts Options) (*Framework, error) {
	if opts.Network == nil {
		opts.Network = transport.NewMemNetwork()
	}
	var coalesce *transport.CoalescingNetwork
	if opts.Coalesce != nil {
		coalesce = transport.NewCoalescingNetwork(opts.Network, *opts.Coalesce)
		opts.Network = coalesce
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	opts.Clock = vclock.Or(opts.Clock)
	f := &Framework{
		cfg:      cfg,
		opts:     opts,
		net:      opts.Network,
		programs: make(map[string]*Program),
		coalesce: coalesce,
	}
	f.initObsv()
	for _, pc := range cfg.Programs {
		p, err := newProgram(f, pc)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.programs[pc.Name] = p
	}
	f.initDiag()
	return f, nil
}

// Join builds a framework hosting only the named program of the
// configuration, connecting to its peers over the supplied network
// (typically transport.NewTCPNetwork against a shared router). Every
// participating program runs its own Join — in separate OS processes if
// desired — against the same configuration file; Start blocks until the
// layout handshake with all coupled peers completes.
func Join(cfg *config.Config, program string, opts Options) (*Framework, error) {
	if opts.Network == nil {
		return nil, fmt.Errorf("core: Join(%q) needs an explicit shared network", program)
	}
	pc, ok := cfg.Program(program)
	if !ok {
		return nil, fmt.Errorf("core: configuration has no program %q", program)
	}
	var coalesce *transport.CoalescingNetwork
	if opts.Coalesce != nil {
		coalesce = transport.NewCoalescingNetwork(opts.Network, *opts.Coalesce)
		opts.Network = coalesce
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	opts.Clock = vclock.Or(opts.Clock)
	f := &Framework{
		cfg:      cfg,
		opts:     opts,
		net:      opts.Network,
		local:    program,
		programs: make(map[string]*Program),
		coalesce: coalesce,
	}
	f.initObsv()
	p, err := newProgram(f, pc)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.programs[pc.Name] = p
	f.initDiag()
	return f, nil
}

// PoolViolations returns every buffer-pool ownership violation recorded
// across the hosted processes (empty unless Options.CheckedPools). The
// simulation harness asserts it is empty after every run.
func (f *Framework) PoolViolations() []string {
	var out []string
	for _, p := range f.programs {
		for _, proc := range p.procs {
			out = append(out, proc.pool.Violations()...)
		}
	}
	return out
}

// Local returns the hosted program in distributed mode (Join).
func (f *Framework) Local() (*Program, error) {
	if f.local == "" {
		return nil, fmt.Errorf("core: Local() on a framework hosting all programs")
	}
	return f.Program(f.local)
}

// hosts reports whether this framework instantiates the named program.
func (f *Framework) hosts(name string) bool {
	_, ok := f.programs[name]
	return ok
}

// Program returns the named program.
func (f *Framework) Program(name string) (*Program, error) {
	p, ok := f.programs[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown program %q", name)
	}
	return p, nil
}

// MustProgram is Program for names known to exist (panics otherwise).
func (f *Framework) MustProgram(name string) *Program {
	p, err := f.Program(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Start validates the coupling against the defined regions, wires the
// representatives and processes, exchanges region layouts, and returns once
// every process is ready for Export/Import calls.
func (f *Framework) Start() error {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return errors.New("core: framework already started")
	}
	f.started = true
	f.mu.Unlock()

	// Early detection of an incorrect coupling specification (Section 3.1):
	// every hosted connection endpoint must be a defined region; when both
	// sides are hosted, the global array shapes must agree. (In distributed
	// mode the peer's shape is checked when its layout arrives and the
	// redistribution schedule is computed.)
	for _, conn := range f.cfg.Connections {
		var expDef, impDef regionDef
		var err error
		if f.hosts(conn.Export.Program) {
			if expDef, err = f.regionDef(conn.Export); err != nil {
				return err
			}
			if conn.Windowed() && !decomp.Bounds(expDef.layout).ContainsRect(conn.Window) {
				er, ec := expDef.layout.Shape()
				return fmt.Errorf("core: connection %s: window %v outside the %dx%d region",
					conn, conn.Window, er, ec)
			}
		}
		if f.hosts(conn.Import.Program) {
			if impDef, err = f.regionDef(conn.Import); err != nil {
				return err
			}
		}
		if f.hosts(conn.Export.Program) && f.hosts(conn.Import.Program) {
			er, ec := expDef.layout.Shape()
			ir, ic := impDef.layout.Shape()
			if er != ir || ec != ic {
				return fmt.Errorf("core: connection %s couples a %dx%d region to a %dx%d region",
					conn, er, ec, ir, ic)
			}
		}
	}

	// Start representative loops and process control loops.
	for _, p := range f.programs {
		p.start()
	}

	// Restored programs re-introduce themselves before the layout exchange:
	// a surviving peer must reset its transport session toward the restarted
	// incarnation (handleRejoin) before any layout reply it sends can be
	// delivered under the new session epoch. Re-sent with the layout
	// announcements below; peers deduplicate by epoch.
	announceRejoins := func() error {
		for _, p := range f.programs {
			if p.rec != nil && p.rec.restored != nil {
				if err := p.rep.announceRejoin(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := announceRejoins(); err != nil {
		return err
	}

	// Rep-to-rep layout handshake: each hosted side tells the peer rep the
	// layout of its end of every connection; peer reps fan the specs out to
	// their processes, which finish wiring their import/export state. In
	// distributed mode the peer may not have registered yet, so the
	// announcements are re-sent until every local process is ready (the
	// receiving side deduplicates).
	sendLayouts := func() error {
		for _, conn := range f.cfg.Connections {
			key := connKey(conn.Export.String(), conn.Import.String())
			if expProg, ok := f.programs[conn.Export.Program]; ok {
				spec, err := decomp.SpecOf(expProg.regions[conn.Export.Region].layout)
				if err != nil {
					return err
				}
				err = expProg.rep.sendLayout(transport.Rep(conn.Import.Program), layoutMsg{
					Conn: key, Region: conn.Import.Region, Remote: spec,
				})
				if err != nil && !errors.Is(err, transport.ErrUnknownAddr) {
					return err
				}
			}
			if impProg, ok := f.programs[conn.Import.Program]; ok {
				spec, err := decomp.SpecOf(impProg.regions[conn.Import.Region].layout)
				if err != nil {
					return err
				}
				err = impProg.rep.sendLayout(transport.Rep(conn.Export.Program), layoutMsg{
					Conn: key, Region: conn.Export.Region, Remote: spec,
				})
				if err != nil && !errors.Is(err, transport.ErrUnknownAddr) {
					return err
				}
			}
		}
		return nil
	}
	if err := sendLayouts(); err != nil {
		return err
	}
	// Wait until every hosted process reports ready, re-announcing layouts
	// periodically for peers that registered late.
	clock := f.opts.Clock
	deadline := clock.Now().Add(f.opts.Timeout)
	for _, p := range f.programs {
		for _, proc := range p.procs {
			for {
				wait := clock.Until(deadline)
				if wait > 200*time.Millisecond {
					wait = 200 * time.Millisecond
				}
				err := proc.waitReady(wait)
				if err == nil {
					break
				}
				if clock.Now().After(deadline) {
					return fmt.Errorf("core: %s startup: %w", proc.addr(), err)
				}
				if err := announceRejoins(); err != nil {
					return err
				}
				if err := sendLayouts(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (f *Framework) regionDef(ep config.Endpoint) (regionDef, error) {
	p, ok := f.programs[ep.Program]
	if !ok {
		return regionDef{}, fmt.Errorf("core: connection names unknown program %q", ep.Program)
	}
	def, ok := p.regions[ep.Region]
	if !ok {
		return regionDef{}, fmt.Errorf("core: program %s never defined region %q named in the coupling configuration",
			ep.Program, ep.Region)
	}
	return def, nil
}

// FrameStats returns the coalescing layer's frame counters; ok is false
// when Options.Coalesce did not enable the layer.
func (f *Framework) FrameStats() (stats transport.FrameStats, ok bool) {
	if f.coalesce == nil {
		return transport.FrameStats{}, false
	}
	return f.coalesce.Stats(), true
}

// Obsv returns the framework's observability layer — Options.Obsv, or the
// private registry-only observer created when none was supplied. Never nil.
func (f *Framework) Obsv() *obsv.Observer { return f.obs }

// Err returns the first violation or internal error any program hit, or nil.
func (f *Framework) Err() error {
	for _, p := range f.programs {
		if err := p.err(); err != nil {
			return err
		}
	}
	return nil
}

// Close tears the framework down. Outstanding Export/Import calls fail.
func (f *Framework) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.obs.RemoveStatus(f.statusName())
	for _, p := range f.programs {
		p.close()
	}
	return f.net.Close()
}
