package core

// RecoverGroup runs the intra-program failure-recovery sequence on this
// process's communicator after a collective reported a failed rank: revoke
// the group (unblocking every sibling promptly), agree on the failed-rank
// set (identical on every survivor, tolerating failures during the agreement
// itself), and shrink to a re-ranked survivor communicator, which replaces
// the one Comm returns. The agreed failed ranks — in the pre-shrink group
// numbering — are returned so the application can drop the dead ranks'
// share of the work before re-running the interrupted collective.
//
// Every surviving process of the program must call RecoverGroup for the same
// failure episode, from the goroutine that drives its collectives (the Comm
// is single-goroutine, and so is recovery). A process that finds itself in
// the agreed set gets collective.ErrExcluded and must leave the computation;
// the survivors' shrunk groups line up without it. Instruments, diagnosis
// wiring and the flight recorder carry over to the shrunk communicator, so
// the revoke/agree/shrink sequence is visible in /metrics, /statusz and
// flight dumps.
func (p *Process) RecoverGroup() ([]int, error) {
	c := p.Comm()
	c.Revoke()
	failed, err := c.AgreeFailures()
	if err != nil {
		return failed, err
	}
	nc, err := c.Shrink(failed)
	if err != nil {
		return failed, err
	}
	p.commMu.Lock()
	p.comm = nc
	p.commMu.Unlock()
	return failed, nil
}
