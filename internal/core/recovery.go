package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/obsv"
	"repro/internal/obsv/diag"
	"repro/internal/recover"
	"repro/internal/transport"
	"repro/internal/wire"
)

// RecoveryOptions enables collective-sequence checkpointing and crash
// recovery. With it set, every hosted program:
//
//   - retains matched export versions until the importing peer acknowledges a
//     checkpoint past them (so a restarted importer can be re-fed),
//   - accepts replayed requests, duplicate answers and stale data idempotently
//     instead of treating them as protocol violations,
//   - suspends instead of failing when a peer is declared down (the rejoin
//     handshake revives it), and
//   - on Restore, rebuilds its buffer managers, matcher histories and import
//     progress from the program's last checkpoint and announces a rejoin to
//     every peer rep.
//
// Checkpoints are taken by the application: every rank calls
// Process.Checkpoint with the same sequence number at the same point of its
// collective operation order (Property 1 makes that a consistent cut). All
// coupled participants should enable recovery, or a restarted peer cannot be
// resynced.
type RecoveryOptions struct {
	// Store persists one checkpoint per program. Required.
	Store recover.Store
	// Restore loads the program's latest checkpoint at construction; the
	// driver resumes from Program.RestoredSeq.
	Restore bool
	// Every is a driver hint — checkpoint every Every collective steps. The
	// framework does not act on it (checkpoints are explicit); it is carried
	// here so flag plumbing has one home (Framework.CheckpointEvery).
	Every int
}

// progRecovery is one hosted program's recovery state and instruments.
type progRecovery struct {
	store recover.Store
	// epoch counts this program's restarts: 0 for a fresh start, checkpoint
	// epoch + 1 after a restore. It namespaces transport sessions.
	epoch uint64
	// restored is the checkpoint this incarnation was rebuilt from (nil on a
	// fresh start).
	restored *recover.Checkpoint

	mu      sync.Mutex
	pending map[uint64]*pendingCkpt

	ckptNS   *obsv.Histogram // recover.checkpoint.ns: assemble+encode+save time
	rejoins  *obsv.Counter   // recover.rejoins: peer rejoin handshakes processed
	replays  *obsv.Counter   // recover.versions_replayed: matched versions re-sent
	suspends *obsv.Counter   // recover.suspends: peer-down events absorbed
	stale    *obsv.Counter   // recover.stale.responses: responses for unknown requests dropped
}

// pendingCkpt collects the per-rank states of one in-progress checkpoint.
type pendingCkpt struct {
	procs []recover.ProcState
	seen  []bool
	got   int
}

func newProgRecovery(opts *RecoveryOptions, reg *obsv.Registry, program string) (*progRecovery, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("core: RecoveryOptions for %s without a Store", program)
	}
	rec := &progRecovery{
		store:   opts.Store,
		pending: make(map[uint64]*pendingCkpt),
	}
	l := obsv.L("program", program)
	rec.ckptNS = reg.Histogram("recover.checkpoint.ns", l)
	rec.rejoins = reg.Counter("recover.rejoins", l)
	rec.replays = reg.Counter("recover.versions_replayed", l)
	rec.suspends = reg.Counter("recover.suspends", l)
	rec.stale = reg.Counter("recover.stale.responses", l)
	if opts.Restore {
		ck, err := opts.Store.Load(program)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			rec.restored = ck
			rec.epoch = ck.Epoch + 1
		}
	}
	return rec, nil
}

// procState returns the restored checkpoint's state for one rank (nil when
// not restored or the rank is absent).
func (rec *progRecovery) procState(rank int) *recover.ProcState {
	if rec == nil || rec.restored == nil {
		return nil
	}
	for i := range rec.restored.Procs {
		if rec.restored.Procs[i].Rank == rank {
			return &rec.restored.Procs[i]
		}
	}
	return nil
}

// RestoredSeq returns the collective sequence number of the checkpoint this
// program was restored from; ok is false on a fresh start (drivers then begin
// at their usual first step).
func (p *Program) RestoredSeq() (seq uint64, ok bool) {
	if p.rec == nil || p.rec.restored == nil {
		return 0, false
	}
	return p.rec.restored.Seq, true
}

// Epoch returns the program's restart epoch: 0 for a fresh start, incremented
// by every restore. The transport session carrying this program must be built
// with the same epoch (transport.ReliableConfig.SessionEpoch,
// transport.TCPNetwork.SessionEpoch) so peers distinguish its new session
// from the dead one.
func (p *Program) Epoch() uint64 {
	if p.rec == nil {
		return 0
	}
	return p.rec.epoch
}

// CheckpointEvery returns the RecoveryOptions.Every driver hint (0 when
// recovery is off or no interval was configured).
func (f *Framework) CheckpointEvery() int {
	if f.opts.Recovery == nil {
		return 0
	}
	return f.opts.Recovery.Every
}

// Checkpoint is the collective checkpoint operation: every rank of the
// program calls it with the same application-chosen sequence number at the
// same point of its Export/Import order. Each rank snapshots its share of the
// framework state (export buffer managers, matcher histories, import
// progress); the last rank to contribute encodes and saves the assembled
// program checkpoint, then acknowledges it to the exporting peers so they can
// release versions retained for resync. The call does not block on the other
// ranks: when it returns on the last rank, the checkpoint is durable.
func (p *Process) Checkpoint(seq uint64) error {
	if p.prog.rec == nil {
		return fmt.Errorf("core: %s: Checkpoint without Options.Recovery", p.addr())
	}
	if err := p.checkAbort(); err != nil {
		return err
	}
	ps := recover.ProcState{
		Rank:    p.rank,
		Exports: make(map[string]buffer.ManagerState),
		Imports: make(map[string]recover.ImportState),
	}
	for _, st := range p.exps {
		for _, ec := range st.conns {
			ec.mu.Lock()
			ps.Exports[ec.key] = ec.mgr.State()
			ec.mu.Unlock()
		}
	}
	for _, st := range p.imps {
		ps.Imports[st.key] = recover.ImportState{Issued: append([]float64(nil), st.issued...)}
	}
	return p.prog.contributeCkpt(p, seq, ps)
}

// contributeCkpt files one rank's snapshot; the completing rank saves the
// checkpoint and sends the release acks.
func (p *Program) contributeCkpt(proc *Process, seq uint64, ps recover.ProcState) error {
	rec := p.rec
	clock := p.fw.opts.Clock
	start := clock.Now()
	rec.mu.Lock()
	pc := rec.pending[seq]
	if pc == nil {
		pc = &pendingCkpt{procs: make([]recover.ProcState, p.n), seen: make([]bool, p.n)}
		rec.pending[seq] = pc
	}
	if pc.seen[proc.rank] {
		rec.mu.Unlock()
		return fmt.Errorf("core: %s checkpointed sequence %d twice (Property 1 violation)", proc.addr(), seq)
	}
	pc.seen[proc.rank] = true
	pc.procs[proc.rank] = ps
	pc.got++
	done := pc.got == p.n
	if done {
		delete(rec.pending, seq)
	}
	rec.mu.Unlock()
	if !done {
		return nil
	}
	ck := &recover.Checkpoint{Program: p.name, Epoch: rec.epoch, Seq: seq, Procs: pc.procs}
	if err := rec.store.Save(ck); err != nil {
		err = fmt.Errorf("core: checkpoint %s@%d: %w", p.name, seq, err)
		p.fail(err)
		return err
	}
	rec.ckptNS.Observe(clock.Since(start).Nanoseconds())
	p.flight.Record(diag.Event{
		Kind: diag.KindCheckpoint, Seq: uint32(seq), Rank: int32(proc.rank),
		A1: int64(seq), A2: int64(rec.epoch),
	})
	// Acknowledge to every exporting peer: requests below the checkpointed
	// import count will never be replayed, so the retained versions answering
	// them can be freed. (Property 1: the count is identical across ranks.)
	for key, ims := range ps.Imports {
		conn, ok := p.rep.impConns[key]
		if !ok {
			continue
		}
		err := proc.d.Send(transport.Message{
			Kind:    transport.KindControl,
			Dst:     transport.Rep(conn.Export.Program),
			Tag:     releaseTag,
			Payload: wire.MustMarshal(releaseMsg{Conn: key, Through: len(ims.Issued)}),
		})
		if err != nil && proc.checkAbort() == nil {
			p.fail(err)
			return err
		}
	}
	return nil
}

// announceRejoin introduces a restored program to its peers: the restart
// epoch plus per-connection resume points. Sent from Framework.Start (and
// re-sent with the layout announcements until the handshake completes); peers
// deduplicate by epoch.
func (r *repRunner) announceRejoin() error {
	rec := r.prog.rec
	rm := rejoinMsg{
		Epoch:   rec.epoch,
		Exports: make(map[string]int),
		Imports: make(map[string]int),
	}
	for _, proc := range r.prog.procs {
		for _, st := range proc.exps {
			for _, ec := range st.conns {
				ec.mu.Lock()
				n := ec.mgr.NumRequests()
				ec.mu.Unlock()
				if cur, ok := rm.Exports[ec.key]; !ok || n < cur {
					rm.Exports[ec.key] = n
				}
			}
		}
		for _, st := range proc.imps {
			rm.Imports[st.key] = len(st.issued)
		}
	}
	r.prog.flight.Record(diag.Event{
		Kind: diag.KindRejoin, Rank: -1, A1: int64(rec.epoch), Note: "announce",
	})
	payload := wire.MustMarshal(rm)
	for _, peer := range r.prog.fw.peerPrograms(r.prog.name) {
		err := r.d.Send(transport.Message{
			Kind:    transport.KindControl,
			Dst:     transport.Rep(peer),
			Tag:     rejoinTag,
			Payload: payload,
		})
		if err != nil && !errors.Is(err, transport.ErrUnknownAddr) {
			return err
		}
	}
	return nil
}

// handleRejoin processes a restarted peer's re-introduction: reset the
// transport session toward it (discarding the dead session's unacked
// messages and opening the new epoch), revive the failure detector's view,
// and — for connections importing from the rejoined exporter — re-send every
// request from min(the exporter's resume id, our delivery watermark), so its
// restored ranks re-answer what they lost and re-feed the data. Repeated
// announcements of the same epoch are deduplicated.
func (r *repRunner) handleRejoin(m transport.Message) {
	r.touchPeer(m)
	if r.prog.rec == nil {
		// Peer recovers, we don't: treat its new incarnation like a fresh
		// session anyway so the coupling has a chance to continue.
		var rm rejoinMsg
		if err := wire.Unmarshal(m.Payload, &rm); err != nil {
			r.prog.fail(err)
			return
		}
		resetPeerSessions(r.prog.fw.net, m.Src.Program, uint32(rm.Epoch))
		return
	}
	var rm rejoinMsg
	if err := wire.Unmarshal(m.Payload, &rm); err != nil {
		r.prog.fail(err)
		return
	}
	peer := m.Src.Program
	if rm.Epoch <= r.peerEpochs[peer] {
		return // duplicate announcement of an epoch already handled
	}
	r.peerEpochs[peer] = rm.Epoch
	r.prog.rec.rejoins.Inc()
	r.prog.flight.Record(diag.Event{
		Kind: diag.KindRejoin, Rank: -1, A1: int64(rm.Epoch), Note: peer,
	})
	r.fd.reset(peer)
	resetPeerSessions(r.prog.fw.net, peer, uint32(rm.Epoch))
	for key, conn := range r.impConns {
		if conn.Export.Program != peer {
			continue
		}
		is := r.impSeq[conn.Import.Region]
		floor := is.delivered
		if resume, ok := rm.Exports[key]; ok && resume < floor {
			floor = resume
		}
		for reqID := floor; reqID < len(is.seq); reqID++ {
			var flow uint64
			if reqID < len(is.flows) {
				flow = is.flows[reqID]
			}
			err := r.d.Send(transport.Message{
				Kind:    transport.KindRequest,
				Dst:     transport.Rep(peer),
				Tag:     key,
				Payload: wire.MustMarshal(requestMsg{Conn: key, ReqID: reqID, ReqTS: is.seq[reqID]}),
				Trace:   flow,
			})
			if err != nil {
				r.prog.fail(err)
				return
			}
		}
	}
}

// resetPeerSessions walks the transport layer stack down to the reliable
// layer (if any) and resets its session state toward the named program.
func resetPeerSessions(n transport.Network, program string, epoch uint32) {
	for n != nil {
		if rn, ok := n.(*transport.ReliableNetwork); ok {
			rn.ResetPeer(program, epoch)
			return
		}
		u, ok := n.(transport.Unwrapper)
		if !ok {
			return
		}
		n = u.Unwrap()
	}
}

// findTCPNetwork walks the transport layer stack down to the TCP base
// transport, for the observability bridges (nil when the base is in-memory).
func findTCPNetwork(n transport.Network) *transport.TCPNetwork {
	for n != nil {
		if t, ok := n.(*transport.TCPNetwork); ok {
			return t
		}
		u, ok := n.(transport.Unwrapper)
		if !ok {
			return nil
		}
		n = u.Unwrap()
	}
	return nil
}
