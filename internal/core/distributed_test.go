package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/testutil"
	"repro/internal/transport"
)

const distributedCfg = `
E local b 2
I local b 2
#
E.d I.d REGL 2.5
`

// joinProgram runs one side of a distributed coupling: Join + DefineRegion +
// Start + the app loop.
func joinProgram(t *testing.T, router string, name string, layout decomp.Layout,
	app func(prog *Program) error) error {
	cfg, err := config.ParseString(distributedCfg)
	if err != nil {
		return err
	}
	net := transport.NewTCPNetwork(router)
	defer net.Close()
	fw, err := Join(cfg, name, Options{
		Network:   net,
		BuddyHelp: true,
		Timeout:   30 * time.Second,
	})
	if err != nil {
		return err
	}
	defer fw.Close()
	prog, err := fw.Local()
	if err != nil {
		return err
	}
	if err := prog.DefineRegion("d", layout); err != nil {
		return err
	}
	if err := fw.Start(); err != nil {
		return err
	}
	if err := app(prog); err != nil {
		return err
	}
	return fw.Err()
}

// TestDistributedCoupling runs exporter and importer as two independent
// frameworks joined over a TCP router — the paper's deployment model of one
// binary per component. The importer starts late to exercise the handshake
// retry.
func TestDistributedCoupling(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	router, err := transport.StartTCPRouter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	const size = 8
	le, _ := decomp.NewRowBlock(size, size, 2)
	li, _ := decomp.NewColBlock(size, size, 2)

	errs := make(chan error, 2)
	go func() {
		errs <- joinProgram(t, router.ListenAddr(), "E", le, func(prog *Program) error {
			var wg sync.WaitGroup
			perr := make([]error, prog.Procs())
			for r := 0; r < prog.Procs(); r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					p := prog.Process(r)
					block, _ := p.Block("d")
					for k := 1; k <= 15; k++ {
						if err := p.Export("d", float64(k), fillBlock(block, float64(k))); err != nil {
							perr[r] = err
							return
						}
					}
				}(r)
			}
			wg.Wait()
			for _, e := range perr {
				if e != nil {
					return e
				}
			}
			// Stay alive until the importer's request was served: closing
			// this framework tears down the exporter's processes, so a
			// component must not exit before its peers are done with it
			// (shutdown coordination is application-level, as in the paper's
			// independently developed programs).
			deadline := testutil.Now().Add(30 * time.Second)
			for {
				served := true
				for r := 0; r < prog.Procs(); r++ {
					stats, err := prog.Process(r).ExportStats("d")
					if err != nil {
						return err
					}
					if stats["I.d"].Sends < 1 {
						served = false
					}
				}
				if served {
					return nil
				}
				if testutil.Now().After(deadline) {
					return fmt.Errorf("importer never collected the match")
				}
				testutil.Sleep(5 * time.Millisecond)
			}
		})
	}()
	go func() {
		testutil.Sleep(150 * time.Millisecond) // join late: the handshake must retry
		errs <- joinProgram(t, router.ListenAddr(), "I", li, func(prog *Program) error {
			var wg sync.WaitGroup
			perr := make([]error, prog.Procs())
			for r := 0; r < prog.Procs(); r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					p := prog.Process(r)
					block, _ := p.Block("d")
					dst := make([]float64, block.Area())
					res, err := p.Import("d", 10, dst)
					if err != nil {
						perr[r] = err
						return
					}
					if !res.Matched || res.MatchTS != 10 {
						perr[r] = fmt.Errorf("resolved %+v", res)
						return
					}
					g := decomp.Grid{Block: block, Data: dst}
					if g.At(block.R0, block.C0) != cell(10, block.R0, block.C0) {
						perr[r] = fmt.Errorf("data wrong over distributed coupling")
					}
				}(r)
			}
			wg.Wait()
			for _, e := range perr {
				if e != nil {
					return e
				}
			}
			return nil
		})
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("distributed coupling timed out")
		}
	}
}

// TestJoinValidation: Join needs an explicit network and a known program.
func TestJoinValidation(t *testing.T) {
	cfg, _ := config.ParseString(distributedCfg)
	if _, err := Join(cfg, "E", Options{}); err == nil {
		t.Error("Join without a network accepted")
	}
	net := transport.NewMemNetwork()
	defer net.Close()
	if _, err := Join(cfg, "nope", Options{Network: net}); err == nil {
		t.Error("unknown program accepted")
	}
	f, err := Join(cfg, "E", Options{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Local(); err != nil {
		t.Errorf("Local: %v", err)
	}
	if _, err := f.Program("I"); err == nil {
		t.Error("peer program instantiated in distributed mode")
	}
}

// TestLocalOnFullFramework: Local is only meaningful after Join.
func TestLocalOnFullFramework(t *testing.T) {
	f := buildCoupling(t, Options{Timeout: 5 * time.Second}, 1, 1, 4, "REGL 1")
	if _, err := f.Local(); err == nil {
		t.Error("Local succeeded on a host-all framework")
	}
}
