package core

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/obsv/diag"
	"repro/internal/transport"
)

// regionDef is a program-level region definition: the distributed layout of
// one named 2-D array the program exports or imports.
type regionDef struct {
	name   string
	layout decomp.Layout
}

// Program is one parallel simulation component: n processes plus a
// representative.
type Program struct {
	fw   *Framework
	name string
	n    int

	regions map[string]regionDef
	rep     *repRunner
	procs   []*Process
	proto   protoCounters
	// rec is the program's recovery state (nil unless Options.Recovery).
	rec *progRecovery
	// board and flight are the program's straggler board and flight recorder
	// (nil unless Options.Diag).
	board  *diag.Board
	flight *diag.Recorder

	errMu    sync.Mutex
	firstErr error
}

func newProgram(f *Framework, pc config.Program) (*Program, error) {
	p := &Program{
		fw:      f,
		name:    pc.Name,
		n:       pc.Procs,
		regions: make(map[string]regionDef),
		proto:   newProtoCounters(f.obs.Registry, pc.Name),
	}
	if f.opts.Diag {
		p.board = diag.NewBoard(pc.Name, pc.Procs)
		p.flight = diag.NewRecorder(pc.Name, f.opts.FlightEvents, f.opts.Clock)
		p.flight.SetRegistry(f.obs.Registry)
	}
	if ro := f.opts.Recovery; ro != nil {
		rec, err := newProgRecovery(ro, f.obs.Registry, pc.Name)
		if err != nil {
			return nil, err
		}
		p.rec = rec
	}
	repEP, err := f.net.Register(transport.Rep(pc.Name))
	if err != nil {
		return nil, fmt.Errorf("core: register rep of %s: %w", pc.Name, err)
	}
	p.rep = newRepRunner(p, transport.NewDispatcher(repEP))
	for r := 0; r < pc.Procs; r++ {
		ep, err := f.net.Register(transport.Proc(pc.Name, r))
		if err != nil {
			return nil, fmt.Errorf("core: register %s: %w", transport.Proc(pc.Name, r), err)
		}
		proc, err := newProcess(p, r, transport.NewDispatcher(ep))
		if err != nil {
			return nil, err
		}
		p.procs = append(p.procs, proc)
	}
	return p, nil
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Procs returns the number of processes.
func (p *Program) Procs() int { return p.n }

// Process returns the rank-th process.
func (p *Program) Process(rank int) *Process { return p.procs[rank] }

// DefineRegion declares a distributed region before Start. All processes of
// the program share the definition (it is a collective property).
func (p *Program) DefineRegion(name string, layout decomp.Layout) error {
	if name == "" {
		return fmt.Errorf("core: empty region name in program %s", p.name)
	}
	if _, dup := p.regions[name]; dup {
		return fmt.Errorf("core: program %s defined region %q twice", p.name, name)
	}
	if layout.Procs() != p.n {
		return fmt.Errorf("core: region %s.%s layout is for %d processes, program has %d",
			p.name, name, layout.Procs(), p.n)
	}
	p.regions[name] = regionDef{name: name, layout: layout}
	return nil
}

// start launches the rep loop and process control loops.
func (p *Program) start() {
	p.rep.start()
	for _, proc := range p.procs {
		proc.start()
	}
}

// fail records the program's first error and aborts its processes. With
// heartbeats enabled, the first failure is also announced to every peer rep
// so their detectors fire immediately instead of waiting out the lease.
func (p *Program) fail(err error) {
	if err == nil {
		return
	}
	p.errMu.Lock()
	first := p.firstErr == nil
	if first {
		p.firstErr = err
	}
	p.errMu.Unlock()
	if first {
		for _, proc := range p.procs {
			proc.abortWith(err)
		}
		if p.fw.opts.Heartbeat > 0 {
			p.rep.announceFailure(p.fw.peerPrograms(p.name), err)
		}
	}
}

// peerDown records that a coupled peer program died. Without recovery, the
// program fails with err (unblocking Export/Import calls, which return it)
// and every export buffer held only for the dead peer's connections is
// released — no request will ever consume those versions. With recovery
// enabled, the program suspends instead: buffers are kept (the restarted peer
// will resync from them), blocked calls keep waiting within Options.Timeout,
// and the rejoin handshake revives the coupling.
func (p *Program) peerDown(err *PeerDownError) {
	p.proto.peerDown.Inc()
	if p.flight != nil {
		// A declared-dead peer is exactly the moment the flight recorder
		// exists for: preserve the last protocol events around the death.
		p.flight.Record(diag.Event{Kind: diag.KindPeerDown, Rank: -1, Note: err.Peer})
		p.flight.DumpFile(p.fw.opts.FlightDir, "peer down: "+err.Error())
	}
	if p.rec != nil {
		p.rec.suspends.Inc()
		return
	}
	p.fail(err)
	for _, proc := range p.procs {
		p.proto.evictions.Add(uint64(proc.evictPeer(err.Peer)))
	}
}

// ExportTotals aggregates the buffer statistics of an exported region across
// all processes and connections of the program (counts and times summed;
// per-request records omitted).
func (p *Program) ExportTotals(region string) (buffer.Stats, error) {
	var total buffer.Stats
	for _, proc := range p.procs {
		stats, err := proc.ExportStats(region)
		if err != nil {
			return buffer.Stats{}, err
		}
		for _, st := range stats {
			total.Exports += st.Exports
			total.Copies += st.Copies
			total.Skips += st.Skips
			total.Sends += st.Sends
			total.Removes += st.Removes
			total.UnnecessaryCopies += st.UnnecessaryCopies
			total.TransferDones += st.TransferDones
			total.BytesCopied += st.BytesCopied
			total.CopyTime += st.CopyTime
			total.UnnecessaryTime += st.UnnecessaryTime
		}
	}
	return total, nil
}

// err returns the program's first recorded error.
func (p *Program) err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.firstErr
}

func (p *Program) close() {
	p.rep.close()
	for _, proc := range p.procs {
		proc.closeProc()
	}
}
