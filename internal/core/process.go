package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Process is one rank of a parallel program. Its Export and Import methods
// are the framework's collective operations: every process of the program
// must call them in the same order with the same timestamps (Property 1),
// though not at the same time.
type Process struct {
	prog *Program
	rank int
	d    *transport.Dispatcher
	comm *collective.Comm
	log  *trace.Log

	// mu serializes access to the buffer managers (application Export calls
	// versus the control loop's forwarded requests and buddy-help messages).
	mu   sync.Mutex
	exps map[string]*exportRegion
	imps map[string]*importState

	expConnByKey map[string]*exportConn
	impByKey     map[string]*importState

	expectedLayouts int
	layoutsSeen     map[string]bool
	ready           chan struct{}
	abort           chan struct{}
	abortOnce       sync.Once
}

// exportRegion groups the per-connection export pipelines of one region.
type exportRegion struct {
	def   regionDef
	block decomp.Rect
	conns []*exportConn
	// store shares one physical snapshot per timestamp across the region's
	// connections when it is fanned out to several importers (one memcpy per
	// export, however many connections buffer it). nil for single-connection
	// regions, which use the manager's own recycling copy path.
	store *versionStore
}

// versionStore is the refcounted shared-snapshot table of a fanned-out
// export region. It is driven only under the owning process's mu.
type versionStore struct {
	versions map[float64]*sharedVersion
}

type sharedVersion struct {
	data []float64
	refs int
}

func newVersionStore() *versionStore {
	return &versionStore{versions: make(map[float64]*sharedVersion)}
}

// snapshot returns the shared copy for ts, creating it on first use.
func (vs *versionStore) snapshot(ts float64, data []float64) []float64 {
	if v, ok := vs.versions[ts]; ok {
		v.refs++
		return v.data
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	vs.versions[ts] = &sharedVersion{data: buf, refs: 1}
	return buf
}

// release drops one reference; the version is forgotten when the last
// manager frees it (the data itself may still be aliased by an in-flight
// transfer, so it is left to the garbage collector, never recycled).
func (vs *versionStore) release(ts float64) {
	v, ok := vs.versions[ts]
	if !ok {
		return
	}
	v.refs--
	if v.refs <= 0 {
		delete(vs.versions, ts)
	}
}

// live returns the number of distinct shared versions currently held.
func (vs *versionStore) live() int { return len(vs.versions) }

// exportConn is one connection's export pipeline on this process.
type exportConn struct {
	cc       config.Connection
	key      string
	mgr      *buffer.Manager
	block    decomp.Rect
	outgoing []decomp.Transfer // this rank's sends of the redistribution plan
}

// importState is one imported region's receive machinery on this process.
type importState struct {
	cc       config.Connection
	key      string
	block    decomp.Rect
	incoming []decomp.Transfer
	answers  chan answerMsg
	nextCall int

	pmu    sync.Mutex
	pieces map[int][]piece
	signal chan struct{}
}

type piece struct {
	matchTS float64
	sub     decomp.Rect
	vals    []float64
}

func (st *importState) addPiece(reqID int, p piece) {
	st.pmu.Lock()
	if st.pieces == nil {
		st.pieces = make(map[int][]piece)
	}
	st.pieces[reqID] = append(st.pieces[reqID], p)
	st.pmu.Unlock()
	select {
	case st.signal <- struct{}{}:
	default:
	}
}

func newProcess(p *Program, rank int, d *transport.Dispatcher) (*Process, error) {
	comm, err := collective.New(d, p.name, rank, p.n)
	if err != nil {
		return nil, err
	}
	proc := &Process{
		prog:         p,
		rank:         rank,
		d:            d,
		comm:         comm,
		exps:         make(map[string]*exportRegion),
		imps:         make(map[string]*importState),
		expConnByKey: make(map[string]*exportConn),
		impByKey:     make(map[string]*importState),
		layoutsSeen:  make(map[string]bool),
		ready:        make(chan struct{}),
		abort:        make(chan struct{}),
	}
	if p.fw.opts.Trace {
		proc.log = trace.NewLog()
	}
	comm.SetTimeout(p.fw.opts.Timeout)
	return proc, nil
}

func (p *Process) addr() transport.Addr { return transport.Proc(p.prog.name, p.rank) }

// Rank returns this process's rank within its program.
func (p *Process) Rank() int { return p.rank }

// Comm returns the process's intra-program collective communicator (used by
// application code for halo exchange, reductions, barriers, ...).
func (p *Process) Comm() *collective.Comm { return p.comm }

// Trace returns the process's event log (nil unless Options.Trace).
func (p *Process) Trace() *trace.Log { return p.log }

// Block returns this process's global sub-rectangle of a defined region.
func (p *Process) Block(region string) (decomp.Rect, error) {
	def, ok := p.prog.regions[region]
	if !ok {
		return decomp.Rect{}, fmt.Errorf("core: %s: undefined region %q", p.addr(), region)
	}
	return def.layout.Block(p.rank), nil
}

// ExportStats returns the buffer statistics per connection (keyed by the
// import endpoint, e.g. "U.f") for an exported region.
func (p *Process) ExportStats(region string) (map[string]buffer.Stats, error) {
	st, ok := p.exps[region]
	if !ok {
		return nil, fmt.Errorf("core: %s: region %q has no export state", p.addr(), region)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]buffer.Stats, len(st.conns))
	for _, c := range st.conns {
		out[c.cc.Import.String()] = c.mgr.Stats()
	}
	return out, nil
}

// BufferedBytes sums the live buffered bytes across an exported region's
// connections.
func (p *Process) BufferedBytes(region string) (int64, error) {
	st, ok := p.exps[region]
	if !ok {
		return 0, fmt.Errorf("core: %s: region %q has no export state", p.addr(), region)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, c := range st.conns {
		total += c.mgr.BufferedBytes()
	}
	return total, nil
}

// start builds the per-connection state (pipelines whose layouts arrive via
// the rep during the Start handshake) and launches the control loop.
func (p *Process) start() {
	fw := p.prog.fw
	// First pass: group exporting connections by region so fanned-out
	// regions can share snapshots.
	expConns := make(map[string][]config.Connection)
	for _, conn := range fw.cfg.Connections {
		if conn.Export.Program == p.prog.name {
			expConns[conn.Export.Region] = append(expConns[conn.Export.Region], conn)
		}
	}
	// One buffer pool per process: every connection's manager recycles from
	// the same power-of-two size classes, so a freed buffer of one
	// connection serves the next export of any other (all access is under
	// p.mu, matching the pool's single-owner contract).
	var pool *buffer.Pool
	if len(expConns) > 0 {
		pool = buffer.NewPool(0)
	}
	for region, conns := range expConns {
		def := p.prog.regions[region]
		reg := &exportRegion{def: def, block: def.layout.Block(p.rank)}
		if len(conns) > 1 {
			reg.store = newVersionStore()
		}
		p.exps[region] = reg
		for _, conn := range conns {
			p.expectedLayouts++
			mcfg := buffer.Config{
				Policy:   conn.Policy,
				Tol:      conn.Tolerance,
				Log:      p.log,
				MaxBytes: fw.opts.BufferMaxBytes,
				Pool:     pool,
			}
			if reg.store != nil {
				mcfg.Snapshot = reg.store.snapshot
				mcfg.Release = reg.store.release
			}
			mgr, err := buffer.NewManager(mcfg)
			if err != nil {
				p.prog.fail(err)
				return
			}
			key := connKey(conn.Export.String(), conn.Import.String())
			ec := &exportConn{cc: conn, key: key, mgr: mgr, block: reg.block}
			reg.conns = append(reg.conns, ec)
			p.expConnByKey[key] = ec
		}
	}
	for _, conn := range fw.cfg.Connections {
		key := connKey(conn.Export.String(), conn.Import.String())
		if conn.Import.Program == p.prog.name {
			p.expectedLayouts++
			def := p.prog.regions[conn.Import.Region]
			st := &importState{
				cc:      conn,
				key:     key,
				block:   def.layout.Block(p.rank),
				answers: make(chan answerMsg, 4096),
				signal:  make(chan struct{}, 1),
			}
			p.imps[conn.Import.Region] = st
			p.impByKey[key] = st
		}
	}
	// Exported regions with no connections still deserve state so Export on
	// them takes the documented low-overhead path.
	if p.expectedLayouts == 0 {
		close(p.ready)
	}
	go p.ctlLoop()
}

// waitReady blocks until the layout handshake completed for this process.
func (p *Process) waitReady(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.ready:
		return nil
	case <-p.abort:
		if err := p.prog.err(); err != nil {
			return err
		}
		return fmt.Errorf("aborted during layout handshake")
	case <-t.C:
		return fmt.Errorf("layout handshake timed out")
	}
}

func (p *Process) abortWith(err error) {
	p.abortOnce.Do(func() { close(p.abort) })
}

func (p *Process) checkAbort() error {
	select {
	case <-p.abort:
		if err := p.prog.err(); err != nil {
			return err
		}
		return fmt.Errorf("core: %s aborted", p.addr())
	default:
		return nil
	}
}

func (p *Process) closeProc() {
	p.abortWith(nil)
	p.d.Close()
}

// ctlLoop is the process's framework-control goroutine: it applies forwarded
// requests, buddy-help messages and layout announcements to the export
// pipelines, and routes import answers and data pieces to waiting Import
// calls.
func (p *Process) ctlLoop() {
	ctl := p.d.Chan(transport.KindControl)
	data := p.d.Chan(transport.KindData)
	for {
		select {
		case m, ok := <-ctl:
			if !ok {
				return
			}
			p.handleControl(m)
		case m, ok := <-data:
			if !ok {
				return
			}
			p.handleData(m)
		}
	}
}

func (p *Process) handleControl(m transport.Message) {
	switch m.Tag {
	case "layout":
		var lm layoutMsg
		if err := wire.Unmarshal(m.Payload, &lm); err != nil {
			p.prog.fail(err)
			return
		}
		p.handleLayout(lm)
	case "forward":
		var rm requestMsg
		if err := wire.Unmarshal(m.Payload, &rm); err != nil {
			p.prog.fail(err)
			return
		}
		p.handleForward(rm)
	case "buddy":
		var am answerMsg
		if err := wire.Unmarshal(m.Payload, &am); err != nil {
			p.prog.fail(err)
			return
		}
		p.handleBuddy(am)
	case "answer":
		var am answerMsg
		if err := wire.Unmarshal(m.Payload, &am); err != nil {
			p.prog.fail(err)
			return
		}
		st, ok := p.impByKey[am.Conn]
		if !ok {
			p.prog.fail(fmt.Errorf("core: %s: answer for unknown connection %q", p.addr(), am.Conn))
			return
		}
		st.answers <- am
	default:
		p.prog.fail(fmt.Errorf("core: %s: unknown control tag %q", p.addr(), m.Tag))
	}
}

// handleLayout finishes wiring one connection once the peer layout is known:
// it computes the redistribution plan and this rank's share of it. Repeated
// announcements (the distributed-mode handshake re-sends until the peer is
// up) are ignored.
func (p *Process) handleLayout(lm layoutMsg) {
	if p.layoutsSeen[lm.Conn] {
		return
	}
	remote, err := lm.Remote.Build()
	if err != nil {
		p.prog.fail(err)
		return
	}
	if ec, ok := p.expConnByKey[lm.Conn]; ok {
		local := p.prog.regions[ec.cc.Export.Region].layout
		plan, err := decomp.Schedule(local, remote, coupledWindow(ec.cc, local))
		if err != nil {
			p.prog.fail(err)
			return
		}
		ec.outgoing = decomp.Outgoing(plan, p.rank)
	}
	if st, ok := p.impByKey[lm.Conn]; ok {
		local := p.prog.regions[st.cc.Import.Region].layout
		plan, err := decomp.Schedule(remote, local, coupledWindow(st.cc, local))
		if err != nil {
			p.prog.fail(err)
			return
		}
		st.incoming = decomp.Incoming(plan, p.rank)
	}
	p.layoutsSeen[lm.Conn] = true
	if len(p.layoutsSeen) == p.expectedLayouts {
		close(p.ready)
	}
}

// handleForward applies a forwarded import request to the connection's
// pipeline and replies to the rep (the paper's step (1)-(2) in Section 4).
func (p *Process) handleForward(rm requestMsg) {
	ec, ok := p.expConnByKey[rm.Conn]
	if !ok {
		p.prog.fail(fmt.Errorf("core: %s: forwarded request for unknown connection %q", p.addr(), rm.Conn))
		return
	}
	p.mu.Lock()
	rr, err := ec.mgr.OnRequest(rm.ReqTS)
	p.mu.Unlock()
	if err != nil {
		p.prog.fail(err)
		return
	}
	if rr.ReqIndex != rm.ReqID {
		p.prog.fail(fmt.Errorf("core: %s: request id drift: local %d, rep %d", p.addr(), rr.ReqIndex, rm.ReqID))
		return
	}
	p.sendResponse(ec, rm.ReqID, rm.ReqTS, rr.Decision.Result, rr.Decision.MatchTS, rr.Decision.Latest)
	p.sendMatches(ec, rr.Sends)
}

// handleBuddy applies a buddy-help message: the collective answer for a
// request this process reported PENDING.
func (p *Process) handleBuddy(am answerMsg) {
	ec, ok := p.expConnByKey[am.Conn]
	if !ok {
		p.prog.fail(fmt.Errorf("core: %s: buddy-help for unknown connection %q", p.addr(), am.Conn))
		return
	}
	p.mu.Lock()
	sends, err := ec.mgr.OnFinal(am.ReqID, am.Result, am.MatchTS)
	p.mu.Unlock()
	if err != nil {
		p.prog.fail(err)
		return
	}
	p.sendMatches(ec, sends)
}

func (p *Process) handleData(m transport.Message) {
	st, ok := p.impByKey[m.Tag]
	if !ok {
		p.prog.fail(fmt.Errorf("core: %s: data for unknown connection %q", p.addr(), m.Tag))
		return
	}
	reqID, matchTS, sub, vals, err := decodeData(m.Payload)
	if err != nil {
		p.prog.fail(err)
		return
	}
	st.addPiece(reqID, piece{matchTS: matchTS, sub: sub, vals: vals})
}

// sendResponse reports one (possibly updated) matching decision to the rep.
func (p *Process) sendResponse(ec *exportConn, reqID int, reqTS float64, result match.Result, matchTS, latest float64) {
	msg := responseMsg{
		Conn: ec.key, ReqID: reqID, ReqTS: reqTS, Rank: p.rank,
		Result: result, MatchTS: matchTS, Latest: latest,
	}
	err := p.d.Send(transport.Message{
		Kind:    transport.KindResponse,
		Dst:     transport.Rep(p.prog.name),
		Tag:     ec.key,
		Payload: wire.MustMarshal(msg),
	})
	if err != nil {
		p.prog.fail(err)
	}
}

// sendMatches transfers matched data objects to the importer processes along
// this rank's share of the redistribution plan. Pack copies each outgoing
// piece out of the buffered slice, so after the loop the SendItems hold the
// last aliases of the buffers and TransferDone can hand them back to the
// manager for recycling.
func (p *Process) sendMatches(ec *exportConn, sends []buffer.SendItem) {
	for _, s := range sends {
		g := decomp.Grid{Block: ec.block, Data: s.Data}
		for _, tr := range ec.outgoing {
			vals, err := g.Pack(tr.Sub)
			if err != nil {
				p.prog.fail(err)
				return
			}
			p.prog.proto.data.Add(1)
			err = p.d.Send(transport.Message{
				Kind:    transport.KindData,
				Dst:     transport.Proc(ec.cc.Import.Program, tr.To),
				Tag:     ec.key,
				Payload: encodeData(s.ReqIndex, s.MatchTS, tr.Sub, vals),
			})
			if err != nil {
				p.prog.fail(err)
				return
			}
		}
	}
	p.mu.Lock()
	for _, s := range sends {
		ec.mgr.TransferDone(s.MatchTS)
	}
	p.mu.Unlock()
}

// Export is the collective export operation: it offers a new version of the
// region's distributed data (this process's local block, with simulation
// timestamp ts) to every connection of the region. The framework copies the
// data only when the buffering rules require it; the copy cost is what the
// paper's benchmark measures.
func (p *Process) Export(region string, ts float64, data []float64) error {
	if err := p.checkAbort(); err != nil {
		return err
	}
	def, ok := p.prog.regions[region]
	if !ok {
		return fmt.Errorf("core: %s: export of undefined region %q", p.addr(), region)
	}
	st, connected := p.exps[region]
	if !connected {
		// Low-overhead path: the connection specification has no entries for
		// this exported region, so nothing is ever buffered or transferred.
		if want := def.layout.Block(p.rank).Area(); len(data) != want {
			return fmt.Errorf("core: %s: export %q with %d values, block has %d", p.addr(), region, len(data), want)
		}
		return nil
	}
	if want := st.block.Area(); len(data) != want {
		return fmt.Errorf("core: %s: export %q with %d values, block has %d", p.addr(), region, len(data), want)
	}

	type outcome struct {
		ec  *exportConn
		res buffer.OfferResult
	}
	outs := make([]outcome, 0, len(st.conns))
	p.mu.Lock()
	for _, ec := range st.conns {
		res, err := ec.mgr.Offer(ts, data)
		if err != nil {
			p.mu.Unlock()
			p.prog.fail(err)
			return err
		}
		outs = append(outs, outcome{ec: ec, res: res})
	}
	p.mu.Unlock()

	for _, o := range outs {
		for _, r := range o.res.Resolutions {
			p.sendResponse(o.ec, r.ReqIndex, r.ReqTS, r.Decision.Result, r.Decision.MatchTS, r.Decision.Latest)
		}
		p.sendMatches(o.ec, o.res.Sends)
	}
	return nil
}

// FinishRegion is the collective end-of-stream declaration for an exported
// region: this process will export no further versions. Pending import
// requests resolve immediately (MATCH on the best buffered candidate, or NO
// MATCH), and later requests resolve against the buffered versions — so an
// importer that outlives the exporter gets answers instead of waiting
// forever. Like Export, it must be called by every process of the program
// (Property 1). Exporting the region after FinishRegion is an error.
func (p *Process) FinishRegion(region string) error {
	if err := p.checkAbort(); err != nil {
		return err
	}
	if _, ok := p.prog.regions[region]; !ok {
		return fmt.Errorf("core: %s: finish of undefined region %q", p.addr(), region)
	}
	st, connected := p.exps[region]
	if !connected {
		return nil // low-overhead path: nothing to resolve
	}
	type outcome struct {
		ec          *exportConn
		resolutions []buffer.Resolution
		sends       []buffer.SendItem
	}
	outs := make([]outcome, 0, len(st.conns))
	p.mu.Lock()
	for _, ec := range st.conns {
		res, sends, err := ec.mgr.Finish()
		if err != nil {
			p.mu.Unlock()
			return err
		}
		outs = append(outs, outcome{ec: ec, resolutions: res, sends: sends})
	}
	p.mu.Unlock()
	for _, o := range outs {
		for _, r := range o.resolutions {
			p.sendResponse(o.ec, r.ReqIndex, r.ReqTS, r.Decision.Result, r.Decision.MatchTS, r.Decision.Latest)
		}
		p.sendMatches(o.ec, o.sends)
	}
	return nil
}

// ImportResult reports the outcome of an Import call.
type ImportResult struct {
	// Matched is false when the collective answer was NO MATCH; dst is then
	// untouched.
	Matched bool
	// MatchTS is the matched export timestamp when Matched.
	MatchTS float64
}

// Import is the collective import operation: it requests the region's data
// at timestamp ts and, on a match, fills dst (this process's local block)
// with the matched version.
func (p *Process) Import(region string, ts float64, dst []float64) (ImportResult, error) {
	if err := p.checkAbort(); err != nil {
		return ImportResult{}, err
	}
	st, ok := p.imps[region]
	if !ok {
		return ImportResult{}, fmt.Errorf("core: %s: import of unconnected region %q (no connection in the coupling configuration)", p.addr(), region)
	}
	if want := st.block.Area(); len(dst) != want {
		return ImportResult{}, fmt.Errorf("core: %s: import %q into %d values, block has %d", p.addr(), region, len(dst), want)
	}
	reqID := st.nextCall
	st.nextCall++

	err := p.d.Send(transport.Message{
		Kind:    transport.KindImportCall,
		Dst:     transport.Rep(p.prog.name),
		Tag:     region,
		Payload: wire.MustMarshal(importCallMsg{Region: region, ReqTS: ts}),
	})
	if err != nil {
		return ImportResult{}, err
	}

	timeout := p.prog.fw.opts.Timeout
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var ans answerMsg
	select {
	case ans = <-st.answers:
	case <-p.abort:
		return ImportResult{}, p.abortErr()
	case <-timer.C:
		return ImportResult{}, fmt.Errorf("core: %s: import %q@%g: no answer from %s within %v: %w",
			p.addr(), region, ts, transport.Rep(st.cc.Export.Program), timeout, transport.ErrTimeout)
	}
	if ans.ReqID != reqID || ans.ReqTS != ts {
		err := fmt.Errorf("core: %s: answer mismatch: got req %d@%g, want %d@%g (collective import order violated?)",
			p.addr(), ans.ReqID, ans.ReqTS, reqID, ts)
		p.prog.fail(err)
		return ImportResult{}, err
	}
	if ans.Result != match.Match {
		return ImportResult{Matched: false}, nil
	}

	// Collect this rank's pieces of the matched distributed object.
	need := len(st.incoming)
	g := decomp.Grid{Block: st.block, Data: dst}
	got := 0
	for got < need {
		st.pmu.Lock()
		ps := st.pieces[reqID]
		delete(st.pieces, reqID)
		st.pmu.Unlock()
		for _, pc := range ps {
			if pc.matchTS != ans.MatchTS {
				err := fmt.Errorf("core: %s: piece for req %d has timestamp %g, answer said %g",
					p.addr(), reqID, pc.matchTS, ans.MatchTS)
				p.prog.fail(err)
				return ImportResult{}, err
			}
			if err := g.Unpack(pc.sub, pc.vals); err != nil {
				p.prog.fail(err)
				return ImportResult{}, err
			}
			got++
		}
		if got >= need {
			break
		}
		select {
		case <-st.signal:
		case <-p.abort:
			return ImportResult{}, p.abortErr()
		case <-timer.C:
			return ImportResult{}, fmt.Errorf("core: %s: import %q@%g: %d of %d data pieces from %s within %v: %w",
				p.addr(), region, ts, got, need, st.cc.Export.Program, timeout, transport.ErrTimeout)
		}
	}
	return ImportResult{Matched: true, MatchTS: ans.MatchTS}, nil
}

// evictPeer frees the buffered export versions of every connection whose
// importer is the dead program. Those versions exist only to answer that
// importer's future requests, which will never come; a long-running exporter
// would otherwise hold (or keep growing) the buffers until Close.
func (p *Process) evictPeer(peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, st := range p.exps {
		for _, ec := range st.conns {
			if ec.cc.Import.Program == peer {
				ec.mgr.Evict()
			}
		}
	}
}

func (p *Process) abortErr() error {
	if err := p.prog.err(); err != nil {
		return err
	}
	return fmt.Errorf("core: %s aborted", p.addr())
}
