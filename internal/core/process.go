package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/decomp"
	"repro/internal/match"
	"repro/internal/obsv"
	"repro/internal/obsv/diag"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Process is one rank of a parallel program. Its Export and Import methods
// are the framework's collective operations: every process of the program
// must call them in the same order with the same timestamps (Property 1),
// though not at the same time.
//
// Each export connection runs an independent pipeline (exportConn): its own
// lock shard, its own bounded job queue, and — unless Options.SyncDataPlane —
// its own sender goroutine, so Export returns to the application's compute
// loop as soon as the buffering decision is made, and two regions' pipelines
// never contend on a shared lock.
type Process struct {
	prog *Program
	rank int
	d    *transport.Dispatcher
	// commMu guards the comm pointer, which RecoverGroup swaps for the shrunk
	// successor while the status page may be reading instruments; collective
	// calls themselves stay single-goroutine on the owning process.
	commMu sync.Mutex
	comm   *collective.Comm
	log    *trace.Log

	// tracer/ring are the span-recording hooks (nil unless the framework's
	// observer traces); every record site nil-checks ring, so the disabled
	// path costs one branch.
	tracer *obsv.Tracer
	ring   *obsv.Ring

	// syncPlane selects the synchronous baseline data plane: Export performs
	// responses, packing, sends and transfer accounting inline under the
	// connection lock (the pre-async behaviour the overlap benchmark
	// measures against).
	syncPlane  bool
	queueDepth int
	workers    int
	// pool is the process-wide buffer pool shared by every connection's
	// manager and by the data-plane pack scratch buffers.
	pool *buffer.Pool

	exps map[string]*exportRegion
	imps map[string]*importState

	expConnByKey map[string]*exportConn
	impByKey     map[string]*importState

	expectedLayouts int
	layoutsSeen     map[string]bool
	ready           chan struct{}
	abort           chan struct{}
	abortOnce       sync.Once
}

// exportRegion groups the per-connection export pipelines of one region.
type exportRegion struct {
	def   regionDef
	block decomp.Rect
	conns []*exportConn
	// store shares one physical snapshot per timestamp across the region's
	// connections when it is fanned out to several importers (one memcpy per
	// export, however many connections buffer it). nil for single-connection
	// regions, which use the manager's own recycling copy path.
	store *versionStore
}

// versionStore is the refcounted shared-snapshot table of a fanned-out
// export region. It carries its own lock: the region's connections drive it
// from under their independent per-connection locks.
type versionStore struct {
	mu       sync.Mutex
	versions map[float64]*sharedVersion
}

type sharedVersion struct {
	data []float64
	refs int
}

func newVersionStore() *versionStore {
	return &versionStore{versions: make(map[float64]*sharedVersion)}
}

// snapshot returns the shared copy for ts, creating it on first use.
func (vs *versionStore) snapshot(ts float64, data []float64) []float64 {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if v, ok := vs.versions[ts]; ok {
		v.refs++
		return v.data
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	vs.versions[ts] = &sharedVersion{data: buf, refs: 1}
	return buf
}

// release drops one reference; the version is forgotten when the last
// manager frees it (the data itself may still be aliased by an in-flight
// transfer, so it is left to the garbage collector, never recycled).
func (vs *versionStore) release(ts float64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v, ok := vs.versions[ts]
	if !ok {
		return
	}
	v.refs--
	if v.refs <= 0 {
		delete(vs.versions, ts)
	}
}

// live returns the number of distinct shared versions currently held.
func (vs *versionStore) live() int {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return len(vs.versions)
}

// exportConn is one connection's export pipeline on this process.
type exportConn struct {
	cc    config.Connection
	key   string
	block decomp.Rect

	// mu is this connection's shard of the former process-wide lock. It
	// serializes the manager state machine between the application goroutine
	// (Export, FinishRegion, Flush), the control loop (forwarded requests,
	// buddy-help), the sender goroutine (TransferDone) and peer eviction —
	// and, crucially, pipelines of different connections never contend.
	mu       sync.Mutex
	mgr      *buffer.Manager
	outgoing []decomp.Transfer // this rank's sends of the redistribution plan

	// jobs + permits implement the bounded pipeline queue. Producers first
	// acquire a permit — blocking there (never while holding mu) is the
	// backpressure — then push under mu, which cannot block because at most
	// cap(permits) jobs exist. The sender pops, processes, applies
	// TransferDone under mu, and finally releases the permit.
	jobs    chan exportJob
	permits chan struct{}

	// Pipeline instruments, preallocated from the observability registry
	// (labels: program, rank, conn) so the hot path is a single atomic op.
	stall     *obsv.Counter // core.export.stall.ns: producers blocked on a full queue
	queued    *obsv.Counter // core.pipeline.jobs: jobs enqueued
	dataSends *obsv.Counter // core.data.sends: KindData messages sent
	flushes   *obsv.Counter // core.pipeline.flushes: drain barriers processed
	peakDepth *obsv.Gauge   // core.pipeline.peak.depth: high-water mark of len(jobs)

	// flows maps in-flight request IDs to their wire trace IDs (guarded by
	// mu; nil when tracing is off, so the disabled path skips the map
	// entirely). Entries are dropped when the request's decision goes final.
	flows map[int]uint64
}

// exportJob is one unit of deferred data-plane work: the responses a manager
// decision produced (in decision order) and the matched objects to transfer.
// A job with a non-nil drain channel is a barrier: the sender closes it once
// every earlier job of the connection is fully processed.
type exportJob struct {
	resps []respData
	sends []buffer.SendItem
	// sendFlows carries each send's wire trace ID, parallel to sends (nil
	// when tracing is off).
	sendFlows []uint64
	drain     chan struct{}
}

// respData is one response to the rep, captured at decision time.
type respData struct {
	reqID   int
	reqTS   float64
	result  match.Result
	matchTS float64
	latest  float64
	flow    uint64 // wire trace ID of the request (0 when tracing is off)
}

// PipelineStats counts one export connection's data-plane activity.
type PipelineStats struct {
	// Jobs counts resolution/send batches enqueued to the sender; DataSends
	// counts KindData messages sent; Flushes counts drain barriers.
	Jobs, DataSends, Flushes uint64
	// ExportStallNanos is the total time producers (Export, forwarded
	// requests, buddy-help) spent blocked on a full pipeline queue — the
	// time backpressure stole back from the overlap.
	ExportStallNanos int64
	// QueueDepth is the queue depth at snapshot time; PeakQueueDepth its
	// high-water mark.
	QueueDepth, PeakQueueDepth int
}

// ConnStats bundles one export connection's buffer statistics with its
// data-plane pipeline counters.
type ConnStats struct {
	buffer.Stats
	Pipeline PipelineStats
}

func (ec *exportConn) pipelineStats() PipelineStats {
	return PipelineStats{
		Jobs:             ec.queued.Load(),
		DataSends:        ec.dataSends.Load(),
		Flushes:          ec.flushes.Load(),
		ExportStallNanos: int64(ec.stall.Load()),
		QueueDepth:       len(ec.jobs),
		PeakQueueDepth:   int(ec.peakDepth.Load()),
	}
}

// importState is one imported region's receive machinery on this process.
type importState struct {
	cc       config.Connection
	key      string
	block    decomp.Rect
	incoming []decomp.Transfer
	answers  chan answerMsg
	nextCall int
	// issued records the timestamp of every import call, in issue order, for
	// the recovery checkpoint (nil when recovery is off).
	issued []float64

	pmu    sync.Mutex
	pieces map[int][]piece
	// completedThrough is the fully-consumed-imports watermark: data frames
	// for requests below it are recovery resends of objects this process
	// already unpacked, and are dropped instead of accumulating.
	completedThrough int
	signal           chan struct{}
}

type piece struct {
	matchTS float64
	sub     decomp.Rect
	vals    []float64
}

func (st *importState) addPiece(reqID int, p piece) {
	st.pmu.Lock()
	if reqID < st.completedThrough {
		st.pmu.Unlock()
		return
	}
	if st.pieces == nil {
		st.pieces = make(map[int][]piece)
	}
	st.pieces[reqID] = append(st.pieces[reqID], p)
	st.pmu.Unlock()
	select {
	case st.signal <- struct{}{}:
	default:
	}
}

// completed advances the fully-consumed watermark past reqID and drops any
// leftover pieces at or below it (duplicates a recovery resend delivered
// after the import finished).
func (st *importState) completed(reqID int) {
	st.pmu.Lock()
	if reqID+1 > st.completedThrough {
		st.completedThrough = reqID + 1
	}
	for id := range st.pieces {
		if id < st.completedThrough {
			delete(st.pieces, id)
		}
	}
	st.pmu.Unlock()
}

func newProcess(p *Program, rank int, d *transport.Dispatcher) (*Process, error) {
	comm, err := collective.New(d, p.name, rank, p.n)
	if err != nil {
		return nil, err
	}
	proc := &Process{
		prog:         p,
		rank:         rank,
		d:            d,
		comm:         comm,
		syncPlane:    p.fw.opts.SyncDataPlane,
		queueDepth:   p.fw.opts.exportQueueDepth(),
		workers:      p.fw.opts.exportWorkers(),
		exps:         make(map[string]*exportRegion),
		imps:         make(map[string]*importState),
		expConnByKey: make(map[string]*exportConn),
		impByKey:     make(map[string]*importState),
		layoutsSeen:  make(map[string]bool),
		ready:        make(chan struct{}),
		abort:        make(chan struct{}),
	}
	if p.fw.opts.Trace {
		proc.log = trace.NewLog()
	}
	proc.tracer = p.fw.tracer
	proc.ring = proc.tracer.Ring(p.name, rank)
	comm.SetAllReduceHist(p.fw.obs.Registry.Histogram("collective.allreduce.ns", obsv.L("program", p.name)))
	comm.SetInstruments(collective.NewInstruments(p.fw.obs.Registry, p.name))
	comm.SetTimeout(p.fw.opts.Timeout)
	if p.board != nil {
		comm.SetDiag(p.board, p.flight)
	} else if p.flight != nil {
		// Flight recording without payload attribution: fault events (revoke,
		// agree, shrink) still reach the crash-safe ring.
		comm.SetFlightRecorder(p.flight)
	}
	return proc, nil
}

func (p *Process) addr() transport.Addr { return transport.Proc(p.prog.name, p.rank) }

// Rank returns this process's rank within its program.
func (p *Process) Rank() int { return p.rank }

// Comm returns the process's intra-program collective communicator (used by
// application code for halo exchange, reductions, barriers, ...). After a
// RecoverGroup this is the shrunk survivor communicator.
func (p *Process) Comm() *collective.Comm {
	p.commMu.Lock()
	defer p.commMu.Unlock()
	return p.comm
}

// Trace returns the process's event log (nil unless Options.Trace).
func (p *Process) Trace() *trace.Log { return p.log }

// Block returns this process's global sub-rectangle of a defined region.
func (p *Process) Block(region string) (decomp.Rect, error) {
	def, ok := p.prog.regions[region]
	if !ok {
		return decomp.Rect{}, fmt.Errorf("core: %s: undefined region %q", p.addr(), region)
	}
	return def.layout.Block(p.rank), nil
}

// ExportStats returns the buffer and pipeline statistics per connection
// (keyed by the import endpoint, e.g. "U.f") for an exported region.
func (p *Process) ExportStats(region string) (map[string]ConnStats, error) {
	st, ok := p.exps[region]
	if !ok {
		return nil, fmt.Errorf("core: %s: region %q has no export state", p.addr(), region)
	}
	out := make(map[string]ConnStats, len(st.conns))
	for _, c := range st.conns {
		c.mu.Lock()
		s := c.mgr.Stats()
		c.mu.Unlock()
		out[c.cc.Import.String()] = ConnStats{Stats: s, Pipeline: c.pipelineStats()}
	}
	return out, nil
}

// BufferedBytes sums the live buffered bytes across an exported region's
// connections.
func (p *Process) BufferedBytes(region string) (int64, error) {
	st, ok := p.exps[region]
	if !ok {
		return 0, fmt.Errorf("core: %s: region %q has no export state", p.addr(), region)
	}
	var total int64
	for _, c := range st.conns {
		c.mu.Lock()
		total += c.mgr.BufferedBytes()
		c.mu.Unlock()
	}
	return total, nil
}

// start builds the per-connection state (pipelines whose layouts arrive via
// the rep during the Start handshake) and launches the control, data and
// sender goroutines.
func (p *Process) start() {
	fw := p.prog.fw
	// First pass: group exporting connections by region so fanned-out
	// regions can share snapshots.
	expConns := make(map[string][]config.Connection)
	for _, conn := range fw.cfg.Connections {
		if conn.Export.Program == p.prog.name {
			expConns[conn.Export.Region] = append(expConns[conn.Export.Region], conn)
		}
	}
	// One buffer pool per process: every connection's manager recycles from
	// the same power-of-two size classes, so a freed buffer of one
	// connection serves the next export of any other, and the data plane's
	// pack scratch buffers recycle through it too (the pool is
	// concurrency-safe; the per-connection locks are independent).
	reg := fw.obs.Registry
	procLabels := []obsv.Label{obsv.L("program", p.prog.name), obsv.L("rank", strconv.Itoa(p.rank))}
	if len(expConns) > 0 {
		p.pool = buffer.NewPool(0)
		p.pool.SetChecked(fw.opts.CheckedPools)
		pool := p.pool
		reg.GaugeFunc("buffer.pool.reuse", func() float64 { return float64(pool.Stats().Hits) }, procLabels...)
		reg.GaugeFunc("buffer.pool.misses", func() float64 { return float64(pool.Stats().Misses) }, procLabels...)
		reg.GaugeFunc("buffer.pool.free", func() float64 { return float64(pool.Free()) }, procLabels...)
	}
	for region, conns := range expConns {
		def := p.prog.regions[region]
		expReg := &exportRegion{def: def, block: def.layout.Block(p.rank)}
		if len(conns) > 1 {
			expReg.store = newVersionStore()
		}
		p.exps[region] = expReg
		for _, conn := range conns {
			p.expectedLayouts++
			mcfg := buffer.Config{
				Policy:   conn.Policy,
				Tol:      conn.Tolerance,
				Log:      p.log,
				MaxBytes: fw.opts.BufferMaxBytes,
				Pool:     p.pool,
				Now:      fw.opts.Clock.Now,
				// Under recovery, matched versions are retained until the
				// importer's checkpoint acks release them — the resync window
				// a restarted importer replays from.
				Retain: p.prog.rec != nil,
			}
			if expReg.store != nil {
				mcfg.Snapshot = expReg.store.snapshot
				mcfg.Release = expReg.store.release
			}
			mgr, err := buffer.NewManager(mcfg)
			if err != nil {
				p.prog.fail(err)
				return
			}
			key := connKey(conn.Export.String(), conn.Import.String())
			if ps := p.prog.rec.procState(p.rank); ps != nil {
				if mst, ok := ps.Exports[key]; ok {
					if err := mgr.Restore(mst); err != nil {
						p.prog.fail(fmt.Errorf("core: %s: restore %s: %w", p.addr(), key, err))
						return
					}
				}
			}
			connLabels := append(append([]obsv.Label(nil), procLabels...), obsv.L("conn", key))
			ec := &exportConn{
				cc:      conn,
				key:     key,
				mgr:     mgr,
				block:   expReg.block,
				jobs:    make(chan exportJob, p.queueDepth),
				permits: make(chan struct{}, p.queueDepth),

				stall:     reg.Counter("core.export.stall.ns", connLabels...),
				queued:    reg.Counter("core.pipeline.jobs", connLabels...),
				dataSends: reg.Counter("core.data.sends", connLabels...),
				flushes:   reg.Counter("core.pipeline.flushes", connLabels...),
				peakDepth: reg.Gauge("core.pipeline.peak.depth", connLabels...),
			}
			if p.tracer != nil {
				ec.flows = make(map[int]uint64)
			}
			// The buffering decisions themselves are counted by the manager;
			// bridge its skip/copy counters into the registry at exposition
			// time (the closure takes the connection lock briefly).
			reg.GaugeFunc("core.export.skips", func() float64 {
				ec.mu.Lock()
				defer ec.mu.Unlock()
				return float64(ec.mgr.Stats().Skips)
			}, connLabels...)
			reg.GaugeFunc("core.export.copies", func() float64 {
				ec.mu.Lock()
				defer ec.mu.Unlock()
				return float64(ec.mgr.Stats().Copies)
			}, connLabels...)
			expReg.conns = append(expReg.conns, ec)
			p.expConnByKey[key] = ec
			if !p.syncPlane {
				go p.sender(ec)
			}
		}
	}
	for _, conn := range fw.cfg.Connections {
		key := connKey(conn.Export.String(), conn.Import.String())
		if conn.Import.Program == p.prog.name {
			p.expectedLayouts++
			def := p.prog.regions[conn.Import.Region]
			st := &importState{
				cc:      conn,
				key:     key,
				block:   def.layout.Block(p.rank),
				answers: make(chan answerMsg, 4096),
				signal:  make(chan struct{}, 1),
			}
			if ps := p.prog.rec.procState(p.rank); ps != nil {
				if ims, ok := ps.Imports[key]; ok {
					st.issued = append([]float64(nil), ims.Issued...)
					st.nextCall = len(st.issued)
					st.completedThrough = len(st.issued)
				}
			}
			p.imps[conn.Import.Region] = st
			p.impByKey[key] = st
		}
	}
	// Exported regions with no connections still deserve state so Export on
	// them takes the documented low-overhead path.
	if p.expectedLayouts == 0 {
		close(p.ready)
	}
	go p.ctlLoop()
	go p.dataLoop()
}

// waitReady blocks until the layout handshake completed for this process.
func (p *Process) waitReady(d time.Duration) error {
	t := p.prog.fw.opts.Clock.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.ready:
		return nil
	case <-p.abort:
		if err := p.prog.err(); err != nil {
			return err
		}
		return fmt.Errorf("aborted during layout handshake")
	case <-t.C():
		return fmt.Errorf("layout handshake timed out")
	}
}

func (p *Process) abortWith(err error) {
	p.abortOnce.Do(func() { close(p.abort) })
}

func (p *Process) checkAbort() error {
	select {
	case <-p.abort:
		if err := p.prog.err(); err != nil {
			return err
		}
		return fmt.Errorf("core: %s aborted", p.addr())
	default:
		return nil
	}
}

func (p *Process) closeProc() {
	p.abortWith(nil)
	p.d.Close()
}

// ctlLoop is the process's framework-control goroutine: it applies forwarded
// requests, buddy-help messages and layout announcements to the export
// pipelines, and routes import answers to waiting Import calls. Bulk data
// frames are decoded on the separate dataLoop goroutine, so a flood of them
// cannot delay control traffic.
func (p *Process) ctlLoop() {
	ctl := p.d.Chan(transport.KindControl)
	for m := range ctl {
		p.handleControl(m)
	}
}

// dataLoop is the process's bulk-data goroutine: it decodes KindData frames
// and files the pieces for waiting Import calls, independently of the
// control loop.
func (p *Process) dataLoop() {
	data := p.d.Chan(transport.KindData)
	for m := range data {
		p.handleData(m)
	}
}

func (p *Process) handleControl(m transport.Message) {
	switch m.Tag {
	case "layout":
		var lm layoutMsg
		if err := wire.Unmarshal(m.Payload, &lm); err != nil {
			p.prog.fail(err)
			return
		}
		p.handleLayout(lm)
	case "forward":
		var rm requestMsg
		if err := wire.Unmarshal(m.Payload, &rm); err != nil {
			p.prog.fail(err)
			return
		}
		p.handleForward(rm, m.Trace)
	case "buddy":
		var am answerMsg
		if err := wire.Unmarshal(m.Payload, &am); err != nil {
			p.prog.fail(err)
			return
		}
		p.handleBuddy(am, m.Trace)
	case releaseTag:
		var lm releaseMsg
		if err := wire.Unmarshal(m.Payload, &lm); err != nil {
			p.prog.fail(err)
			return
		}
		if ec, ok := p.expConnByKey[lm.Conn]; ok {
			ec.mu.Lock()
			ec.mgr.ReleaseThrough(lm.Through)
			ec.mu.Unlock()
		}
	case resendTag:
		var rm requestMsg
		if err := wire.Unmarshal(m.Payload, &rm); err != nil {
			p.prog.fail(err)
			return
		}
		p.handleResend(rm, m.Trace)
	case "answer":
		var am answerMsg
		if err := wire.Unmarshal(m.Payload, &am); err != nil {
			p.prog.fail(err)
			return
		}
		st, ok := p.impByKey[am.Conn]
		if !ok {
			p.prog.fail(fmt.Errorf("core: %s: answer for unknown connection %q", p.addr(), am.Conn))
			return
		}
		am.flow = m.Trace
		st.answers <- am
	default:
		p.prog.fail(fmt.Errorf("core: %s: unknown control tag %q", p.addr(), m.Tag))
	}
}

// handleLayout finishes wiring one connection once the peer layout is known:
// it computes the redistribution plan and this rank's share of it. Repeated
// announcements (the distributed-mode handshake re-sends until the peer is
// up) are ignored.
func (p *Process) handleLayout(lm layoutMsg) {
	if p.layoutsSeen[lm.Conn] {
		return
	}
	remote, err := lm.Remote.Build()
	if err != nil {
		p.prog.fail(err)
		return
	}
	if ec, ok := p.expConnByKey[lm.Conn]; ok {
		local := p.prog.regions[ec.cc.Export.Region].layout
		plan, err := decomp.Schedule(local, remote, coupledWindow(ec.cc, local))
		if err != nil {
			p.prog.fail(err)
			return
		}
		ec.outgoing = decomp.Outgoing(plan, p.rank)
	}
	if st, ok := p.impByKey[lm.Conn]; ok {
		local := p.prog.regions[st.cc.Import.Region].layout
		plan, err := decomp.Schedule(remote, local, coupledWindow(st.cc, local))
		if err != nil {
			p.prog.fail(err)
			return
		}
		st.incoming = decomp.Incoming(plan, p.rank)
	}
	p.layoutsSeen[lm.Conn] = true
	if len(p.layoutsSeen) == p.expectedLayouts {
		close(p.ready)
	}
}

// jobFromOffer captures an Offer/Finish outcome as a pipeline job.
func jobFromOffer(resolutions []buffer.Resolution, sends []buffer.SendItem) exportJob {
	j := exportJob{sends: sends}
	if len(resolutions) > 0 {
		j.resps = make([]respData, len(resolutions))
		for i, r := range resolutions {
			j.resps[i] = respData{
				reqID: r.ReqIndex, reqTS: r.ReqTS,
				result: r.Decision.Result, matchTS: r.Decision.MatchTS, latest: r.Decision.Latest,
			}
		}
	}
	return j
}

// handleForward applies a forwarded import request to the connection's
// pipeline and queues the reply to the rep (the paper's step (1)-(2) in
// Section 4). Queueing the reply — rather than sending it after the lock is
// dropped — pins the per-connection ReqID order: a later resolution produced
// by a concurrent Export can no longer overtake this request's first
// (possibly PENDING) response on the wire.
func (p *Process) handleForward(rm requestMsg, flow uint64) {
	ec, ok := p.expConnByKey[rm.Conn]
	if !ok {
		p.prog.fail(fmt.Errorf("core: %s: forwarded request for unknown connection %q", p.addr(), rm.Conn))
		return
	}
	if !p.acquirePermit(ec) {
		return
	}
	start := p.tracer.Now()
	ec.mu.Lock()
	if ec.flows != nil && flow != 0 {
		ec.flows[rm.ReqID] = flow
	}
	rr, fresh, err := ec.mgr.OnRequestAt(rm.ReqID, rm.ReqTS)
	if err == nil && !fresh && p.prog.rec == nil {
		// Without recovery a replayed request id is a protocol violation; with
		// it, the restarted rep is re-driving requests this manager already
		// saw, and OnRequestAt re-answered idempotently (re-sending matched
		// data when still buffered).
		err = fmt.Errorf("core: %s: request id drift: local %d, rep %d", p.addr(), ec.mgr.NumRequests()-1, rm.ReqID)
	}
	if err != nil {
		ec.mu.Unlock()
		p.releasePermit(ec)
		p.prog.fail(err)
		return
	}
	if !fresh && len(rr.Sends) > 0 {
		p.prog.rec.replays.Add(uint64(len(rr.Sends)))
	}
	d := rr.Decision
	job := exportJob{
		resps: []respData{{reqID: rm.ReqID, reqTS: rm.ReqTS, result: d.Result, matchTS: d.MatchTS, latest: d.Latest}},
		sends: rr.Sends,
	}
	p.attachFlows(ec, &job)
	p.dispatchLocked(ec, job)
	ec.mu.Unlock()
	if p.ring != nil {
		p.ring.Record(obsv.Span{
			Name: "resolve", TS: start, Dur: p.tracer.Now() - start,
			Flow: flow, Arg: int64(rm.ReqID), Detail: d.Result.String(),
		})
	}
}

// handleResend re-feeds a replayed import request's matched data: the rep
// re-answered a restarted importer from its stored final, and this process
// re-sends its share of the matched version (still buffered — versions are
// retained until the importer's checkpoint acks cover them).
func (p *Process) handleResend(rm requestMsg, flow uint64) {
	ec, ok := p.expConnByKey[rm.Conn]
	if !ok {
		p.prog.fail(fmt.Errorf("core: %s: resend for unknown connection %q", p.addr(), rm.Conn))
		return
	}
	if !p.acquirePermit(ec) {
		return
	}
	ec.mu.Lock()
	item, ok, err := ec.mgr.ResendData(rm.ReqID)
	if err != nil {
		ec.mu.Unlock()
		p.releasePermit(ec)
		p.prog.fail(err)
		return
	}
	if !ok {
		// Undecided (the answer will carry the data when it forms) or no
		// longer buffered (the importer checkpointed past it and will not
		// consume it) — nothing to re-feed.
		ec.mu.Unlock()
		p.releasePermit(ec)
		return
	}
	if p.prog.rec != nil {
		p.prog.rec.replays.Inc()
	}
	job := exportJob{sends: []buffer.SendItem{item}}
	if p.tracer != nil && flow != 0 {
		job.sendFlows = []uint64{flow}
	}
	p.dispatchLocked(ec, job)
	ec.mu.Unlock()
}

// handleBuddy applies a buddy-help message: the collective answer for a
// request this process reported PENDING.
func (p *Process) handleBuddy(am answerMsg, flow uint64) {
	ec, ok := p.expConnByKey[am.Conn]
	if !ok {
		p.prog.fail(fmt.Errorf("core: %s: buddy-help for unknown connection %q", p.addr(), am.Conn))
		return
	}
	if !p.acquirePermit(ec) {
		return
	}
	if p.ring != nil {
		p.ring.Record(obsv.Span{Name: "buddy", TS: p.tracer.Now(), Flow: flow, Arg: int64(am.ReqID), Detail: am.Result.String()})
	}
	ec.mu.Lock()
	if ec.flows != nil {
		delete(ec.flows, am.ReqID) // decision is final; the buddy message carries the flow
	}
	sends, err := ec.mgr.OnFinal(am.ReqID, am.Result, am.MatchTS)
	if err != nil {
		ec.mu.Unlock()
		p.releasePermit(ec)
		p.prog.fail(err)
		return
	}
	if len(sends) == 0 {
		ec.mu.Unlock()
		p.releasePermit(ec)
		return
	}
	job := exportJob{sends: sends}
	if p.tracer != nil && flow != 0 {
		job.sendFlows = make([]uint64, len(sends))
		for i := range job.sendFlows {
			job.sendFlows[i] = flow
		}
	}
	p.dispatchLocked(ec, job)
	ec.mu.Unlock()
}

// attachFlows annotates a job's responses and sends with the wire trace IDs
// of the requests they belong to, and forgets the flow of every request
// whose decision went final (its last response). Called with ec.mu held;
// no-op when tracing is off (ec.flows == nil).
func (p *Process) attachFlows(ec *exportConn, j *exportJob) {
	if ec.flows == nil {
		return
	}
	if len(j.sends) > 0 {
		j.sendFlows = make([]uint64, len(j.sends))
		for i, s := range j.sends {
			j.sendFlows[i] = ec.flows[s.ReqIndex]
		}
	}
	for i := range j.resps {
		r := &j.resps[i]
		r.flow = ec.flows[r.reqID]
		if r.result != match.Pending {
			delete(ec.flows, r.reqID)
		}
	}
}

// handleData files one piece of a matched distributed object. A frame for a
// connection this process does not import — a straggler that outlived its
// peer's teardown, or one duplicated by a faulty transport — is dropped and
// counted (ProtocolStats.DataDropped) rather than failing the program.
func (p *Process) handleData(m transport.Message) {
	st, ok := p.impByKey[m.Tag]
	if !ok {
		p.prog.proto.dataDropped.Inc()
		return
	}
	reqID, matchTS, sub, vals, err := decodeData(m.Payload)
	if err != nil {
		p.prog.fail(err)
		return
	}
	if p.ring != nil {
		p.ring.Record(obsv.Span{
			Name: "data.recv", TS: p.tracer.Now(),
			Flow: m.Trace, Arg: int64(len(vals)), Detail: m.Tag,
		})
	}
	st.addPiece(reqID, piece{matchTS: matchTS, sub: sub, vals: vals})
}

// acquirePermit reserves one pipeline slot, blocking (and accounting the
// stall) when the queue is full. It returns false when the process aborted.
// Producers call it before taking ec.mu, so a full queue never wedges the
// lock against the sender's TransferDone step.
func (p *Process) acquirePermit(ec *exportConn) bool {
	select {
	case ec.permits <- struct{}{}:
		return true
	default:
	}
	clock := p.prog.fw.opts.Clock
	start := clock.Now()
	select {
	case ec.permits <- struct{}{}:
		stallNS := clock.Since(start).Nanoseconds()
		ec.stall.Add(uint64(stallNS))
		if stallNS > 0 {
			p.prog.flight.Record(diag.Event{
				Kind: diag.KindExportStall, Rank: int32(p.rank),
				A1: stallNS, Note: ec.key,
			})
		}
		return true
	case <-p.abort:
		return false
	}
}

func (p *Process) releasePermit(ec *exportConn) { <-ec.permits }

// dispatchLocked hands a job to the connection's data plane. Async: push to
// the sender's queue (never blocks — the caller holds a permit). Sync
// baseline: run it inline, still under the lock. Called with ec.mu held.
func (p *Process) dispatchLocked(ec *exportConn, j exportJob) {
	if p.syncPlane {
		p.runJobSync(ec, j)
		p.releasePermit(ec)
		return
	}
	ec.jobs <- j
	ec.queued.Inc()
	ec.peakDepth.SetMax(int64(len(ec.jobs)))
}

// sender is one connection's data-plane goroutine: it drains the job queue,
// sending queued responses in decision order and fanning matched-data
// transfers out to the importer ranks, then applies the TransferDone
// accounting under the connection lock and releases the job's permit.
func (p *Process) sender(ec *exportConn) {
	for {
		select {
		case j := <-ec.jobs:
			p.runJobAsync(ec, j)
			p.releasePermit(ec)
			if j.drain != nil {
				ec.flushes.Inc()
				close(j.drain)
			}
		case <-p.abort:
			return
		}
	}
}

func (p *Process) runJobAsync(ec *exportConn, j exportJob) {
	for _, r := range j.resps {
		p.sendResponse(ec, r)
	}
	if len(j.sends) == 0 {
		return
	}
	start := p.tracer.Now()
	p.fanOut(ec, j.sends, j.sendFlows)
	if p.ring != nil {
		flow := uint64(0)
		if len(j.sendFlows) > 0 {
			flow = j.sendFlows[0]
		}
		p.ring.Record(obsv.Span{
			Name: "send", TS: start, Dur: p.tracer.Now() - start,
			Flow: flow, Arg: int64(len(j.sends)), Detail: ec.key,
		})
	}
	ec.mu.Lock()
	for _, s := range j.sends {
		ec.mgr.TransferDone(s.MatchTS)
	}
	ec.mu.Unlock()
}

// runJobSync is the synchronous baseline: responses, serial pack+send and
// transfer accounting inline on the caller's goroutine, with ec.mu held.
func (p *Process) runJobSync(ec *exportConn, j exportJob) {
	for _, r := range j.resps {
		p.sendResponse(ec, r)
	}
	for si, s := range j.sends {
		g := decomp.Grid{Block: ec.block, Data: s.Data}
		var flow uint64
		if si < len(j.sendFlows) {
			flow = j.sendFlows[si]
		}
		for _, tr := range ec.outgoing {
			vals, err := g.Pack(tr.Sub)
			if err != nil {
				p.prog.fail(err)
				return
			}
			ec.dataSends.Inc()
			err = p.d.Send(transport.Message{
				Kind:    transport.KindData,
				Dst:     transport.Proc(ec.cc.Import.Program, tr.To),
				Tag:     ec.key,
				Trace:   flow,
				Payload: encodeData(s.ReqIndex, s.MatchTS, tr.Sub, vals),
			})
			if err != nil {
				p.prog.fail(err)
				return
			}
		}
	}
	for _, s := range j.sends {
		ec.mgr.TransferDone(s.MatchTS)
	}
}

// fanOut transfers matched data objects to the importer ranks along this
// rank's share of the redistribution plan, one worker per destination rank
// up to Options.ExportWorkers, each packing into scratch recycled through
// the process's buffer pool.
func (p *Process) fanOut(ec *exportConn, sends []buffer.SendItem, flows []uint64) {
	n := len(ec.outgoing)
	if n == 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range ec.outgoing {
			p.sendTransfer(ec, &ec.outgoing[i], sends, flows)
		}
		return
	}
	tasks := make(chan int, n)
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range tasks {
				p.sendTransfer(ec, &ec.outgoing[i], sends, flows)
			}
		}()
	}
	wg.Wait()
}

// sendTransfer packs and sends every matched object's piece for one outgoing
// transfer (one destination rank). The pack scratch is borrowed from the
// process pool; encodeData copies it into the frame payload, so it recycles
// immediately.
func (p *Process) sendTransfer(ec *exportConn, tr *decomp.Transfer, sends []buffer.SendItem, flows []uint64) {
	scratch := p.pool.Get(tr.Sub.Area())
	defer p.pool.Put(scratch)
	for si, s := range sends {
		g := decomp.Grid{Block: ec.block, Data: s.Data}
		if !g.Block.ContainsRect(tr.Sub) {
			p.prog.fail(fmt.Errorf("core: %s: transfer %v outside block %v", p.addr(), tr.Sub, g.Block))
			return
		}
		g.PackInto(tr.Sub, scratch)
		ec.dataSends.Inc()
		var flow uint64
		if si < len(flows) {
			flow = flows[si]
		}
		err := p.d.Send(transport.Message{
			Kind:    transport.KindData,
			Dst:     transport.Proc(ec.cc.Import.Program, tr.To),
			Tag:     ec.key,
			Trace:   flow,
			Payload: encodeData(s.ReqIndex, s.MatchTS, tr.Sub, scratch),
		})
		if err != nil {
			if p.checkAbort() != nil {
				return // shutting down; the send failure is a consequence
			}
			p.prog.fail(err)
			return
		}
	}
}

// sendResponse reports one (possibly updated) matching decision to the rep.
func (p *Process) sendResponse(ec *exportConn, r respData) {
	msg := responseMsg{
		Conn: ec.key, ReqID: r.reqID, ReqTS: r.reqTS, Rank: p.rank,
		Result: r.result, MatchTS: r.matchTS, Latest: r.latest,
	}
	err := p.d.Send(transport.Message{
		Kind:    transport.KindResponse,
		Dst:     transport.Rep(p.prog.name),
		Tag:     ec.key,
		Trace:   r.flow,
		Payload: wire.MustMarshal(msg),
	})
	if err != nil {
		if p.checkAbort() != nil {
			return
		}
		p.prog.fail(err)
	}
}

// Export is the collective export operation: it offers a new version of the
// region's distributed data (this process's local block, with simulation
// timestamp ts) to every connection of the region. The framework copies the
// data only when the buffering rules require it; the copy cost is what the
// paper's benchmark measures. Any responses and data transfers the offer
// triggers are queued to the connection's sender goroutine, so Export
// returns to the application's compute phase immediately — unless the
// bounded queue is full, in which case Export blocks (backpressure) and the
// stall is accounted in PipelineStats.ExportStallNanos.
func (p *Process) Export(region string, ts float64, data []float64) error {
	if err := p.checkAbort(); err != nil {
		return err
	}
	def, ok := p.prog.regions[region]
	if !ok {
		return fmt.Errorf("core: %s: export of undefined region %q", p.addr(), region)
	}
	st, connected := p.exps[region]
	if !connected {
		// Low-overhead path: the connection specification has no entries for
		// this exported region, so nothing is ever buffered or transferred.
		if want := def.layout.Block(p.rank).Area(); len(data) != want {
			return fmt.Errorf("core: %s: export %q with %d values, block has %d", p.addr(), region, len(data), want)
		}
		return nil
	}
	if want := st.block.Area(); len(data) != want {
		return fmt.Errorf("core: %s: export %q with %d values, block has %d", p.addr(), region, len(data), want)
	}

	for _, ec := range st.conns {
		if !p.acquirePermit(ec) {
			return p.abortErr()
		}
		start := p.tracer.Now()
		ec.mu.Lock()
		res, err := ec.mgr.Offer(ts, data)
		if err != nil {
			ec.mu.Unlock()
			p.releasePermit(ec)
			p.prog.fail(err)
			return err
		}
		if len(res.Resolutions) == 0 && len(res.Sends) == 0 {
			ec.mu.Unlock()
			p.releasePermit(ec)
			p.recordExport(ec, start, nil)
			continue
		}
		job := jobFromOffer(res.Resolutions, res.Sends)
		p.attachFlows(ec, &job)
		p.dispatchLocked(ec, job)
		ec.mu.Unlock()
		p.recordExport(ec, start, &job)
	}
	return nil
}

// recordExport records an Export offer's span (one nil check when tracing
// is off). The flow is the first resolved request's, when any.
func (p *Process) recordExport(ec *exportConn, start int64, j *exportJob) {
	if p.ring == nil {
		return
	}
	sp := obsv.Span{Name: "export", TS: start, Dur: p.tracer.Now() - start, Detail: ec.key}
	if j != nil {
		sp.Arg = int64(len(j.sends))
		if len(j.resps) > 0 {
			sp.Flow = j.resps[0].flow
		} else if len(j.sendFlows) > 0 {
			sp.Flow = j.sendFlows[0]
		}
	}
	p.ring.Record(sp)
}

// Flush is the drain barrier of the asynchronous data plane: it blocks until
// every resolution and data transfer queued so far on the region's export
// pipelines has been sent and its TransferDone accounting applied. With the
// synchronous plane it only checks for abort (nothing is ever queued).
func (p *Process) Flush(region string) error {
	if err := p.checkAbort(); err != nil {
		return err
	}
	if _, ok := p.prog.regions[region]; !ok {
		return fmt.Errorf("core: %s: flush of undefined region %q", p.addr(), region)
	}
	st, connected := p.exps[region]
	if !connected || p.syncPlane {
		return nil
	}
	drains := make([]chan struct{}, 0, len(st.conns))
	for _, ec := range st.conns {
		if !p.acquirePermit(ec) {
			return p.abortErr()
		}
		d := make(chan struct{})
		ec.mu.Lock()
		p.dispatchLocked(ec, exportJob{drain: d})
		ec.mu.Unlock()
		drains = append(drains, d)
	}
	for _, d := range drains {
		select {
		case <-d:
		case <-p.abort:
			return p.abortErr()
		}
	}
	return nil
}

// FinishRegion is the collective end-of-stream declaration for an exported
// region: this process will export no further versions. Pending import
// requests resolve immediately (MATCH on the best buffered candidate, or NO
// MATCH), and later requests resolve against the buffered versions — so an
// importer that outlives the exporter gets answers instead of waiting
// forever. Like Export, it must be called by every process of the program
// (Property 1). FinishRegion drains the region's pipelines before returning
// (the Flush barrier), so all queued transfers are on the wire and accounted.
// Exporting the region after FinishRegion is an error.
func (p *Process) FinishRegion(region string) error {
	if err := p.checkAbort(); err != nil {
		return err
	}
	if _, ok := p.prog.regions[region]; !ok {
		return fmt.Errorf("core: %s: finish of undefined region %q", p.addr(), region)
	}
	st, connected := p.exps[region]
	if !connected {
		return nil // low-overhead path: nothing to resolve
	}
	for _, ec := range st.conns {
		if !p.acquirePermit(ec) {
			return p.abortErr()
		}
		ec.mu.Lock()
		res, sends, err := ec.mgr.Finish()
		if err != nil {
			ec.mu.Unlock()
			p.releasePermit(ec)
			return err
		}
		if p.syncPlane || len(res) > 0 || len(sends) > 0 {
			job := jobFromOffer(res, sends)
			p.attachFlows(ec, &job)
			p.dispatchLocked(ec, job)
		} else {
			p.releasePermit(ec)
		}
		ec.mu.Unlock()
	}
	return p.Flush(region)
}

// ImportResult reports the outcome of an Import call.
type ImportResult struct {
	// Matched is false when the collective answer was NO MATCH; dst is then
	// untouched.
	Matched bool
	// MatchTS is the matched export timestamp when Matched.
	MatchTS float64
}

// Import is the collective import operation: it requests the region's data
// at timestamp ts and, on a match, fills dst (this process's local block)
// with the matched version.
func (p *Process) Import(region string, ts float64, dst []float64) (ImportResult, error) {
	if err := p.checkAbort(); err != nil {
		return ImportResult{}, err
	}
	st, ok := p.imps[region]
	if !ok {
		return ImportResult{}, fmt.Errorf("core: %s: import of unconnected region %q (no connection in the coupling configuration)", p.addr(), region)
	}
	if want := st.block.Area(); len(dst) != want {
		return ImportResult{}, fmt.Errorf("core: %s: import %q into %d values, block has %d", p.addr(), region, len(dst), want)
	}
	reqID := st.nextCall
	st.nextCall++
	if p.prog.rec != nil {
		st.issued = append(st.issued, ts)
	}
	impStart := p.tracer.Now()

	err := p.d.Send(transport.Message{
		Kind:    transport.KindImportCall,
		Dst:     transport.Rep(p.prog.name),
		Tag:     region,
		Payload: wire.MustMarshal(importCallMsg{Region: region, ReqTS: ts}),
	})
	if err != nil {
		return ImportResult{}, err
	}

	timeout := p.prog.fw.opts.Timeout
	timer := p.prog.fw.opts.Clock.NewTimer(timeout)
	defer timer.Stop()
	var ans answerMsg
	select {
	case ans = <-st.answers:
	case <-p.abort:
		return ImportResult{}, p.abortErr()
	case <-timer.C():
		return ImportResult{}, fmt.Errorf("core: %s: import %q@%g: no answer from %s within %v: %w",
			p.addr(), region, ts, transport.Rep(st.cc.Export.Program), timeout, transport.ErrTimeout)
	}
	if ans.ReqID != reqID || ans.ReqTS != ts {
		err := fmt.Errorf("core: %s: answer mismatch: got req %d@%g, want %d@%g (collective import order violated?)",
			p.addr(), ans.ReqID, ans.ReqTS, reqID, ts)
		p.prog.fail(err)
		return ImportResult{}, err
	}
	if ans.Result != match.Match {
		st.completed(reqID)
		p.recordImport(impStart, ans, region)
		return ImportResult{Matched: false}, nil
	}

	// Collect this rank's pieces of the matched distributed object. Recovery
	// resends can duplicate a piece already received from the sender's dead
	// incarnation; the sub-rectangle identifies it (the redistribution plan
	// assigns each source rank disjoint sub-rectangles), so repeats are
	// skipped rather than double-counted.
	need := len(st.incoming)
	g := decomp.Grid{Block: st.block, Data: dst}
	got := 0
	var seen map[decomp.Rect]bool
	for got < need {
		st.pmu.Lock()
		ps := st.pieces[reqID]
		delete(st.pieces, reqID)
		st.pmu.Unlock()
		for _, pc := range ps {
			if seen[pc.sub] {
				continue
			}
			if pc.matchTS != ans.MatchTS {
				err := fmt.Errorf("core: %s: piece for req %d has timestamp %g, answer said %g",
					p.addr(), reqID, pc.matchTS, ans.MatchTS)
				p.prog.fail(err)
				return ImportResult{}, err
			}
			if err := g.Unpack(pc.sub, pc.vals); err != nil {
				p.prog.fail(err)
				return ImportResult{}, err
			}
			if seen == nil {
				seen = make(map[decomp.Rect]bool, need)
			}
			seen[pc.sub] = true
			got++
		}
		if got >= need {
			break
		}
		select {
		case <-st.signal:
		case <-p.abort:
			return ImportResult{}, p.abortErr()
		case <-timer.C():
			return ImportResult{}, fmt.Errorf("core: %s: import %q@%g: %d of %d data pieces from %s within %v: %w",
				p.addr(), region, ts, got, need, st.cc.Export.Program, timeout, transport.ErrTimeout)
		}
	}
	st.completed(reqID)
	p.recordImport(impStart, ans, region)
	return ImportResult{Matched: true, MatchTS: ans.MatchTS}, nil
}

// recordImport records an Import call's span, linked by the answer's flow ID
// to the request/forward/answer spans on the other processes.
func (p *Process) recordImport(start int64, ans answerMsg, region string) {
	if p.ring == nil {
		return
	}
	p.ring.Record(obsv.Span{
		Name: "import", TS: start, Dur: p.tracer.Now() - start,
		Flow: ans.flow, Arg: int64(ans.ReqID), Detail: region,
	})
}

// evictPeer frees the buffered export versions of every connection whose
// importer is the dead program, returning how many versions were dropped.
// Those versions exist only to answer that importer's future requests, which
// will never come; a long-running exporter would otherwise hold (or keep
// growing) the buffers until Close.
func (p *Process) evictPeer(peer string) int {
	n := 0
	for _, st := range p.exps {
		for _, ec := range st.conns {
			if ec.cc.Import.Program == peer {
				ec.mu.Lock()
				n += ec.mgr.Evict()
				ec.mu.Unlock()
			}
		}
	}
	return n
}

func (p *Process) abortErr() error {
	if err := p.prog.err(); err != nil {
		return err
	}
	return fmt.Errorf("core: %s aborted", p.addr())
}
