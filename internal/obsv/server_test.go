package obsv_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obsv"
	"repro/internal/testutil"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	obs := obsv.New(obsv.Config{Tracing: true, RingSize: 64})
	obs.Registry.Counter("core.export.skips", obsv.L("program", "F")).Add(2)
	ring := obs.Tracer.Ring("F", 0)
	ring.Record(obsv.Span{Name: "export", TS: 10, Dur: 5, Flow: obs.Tracer.NewSpanID()})
	obs.AddStatus("conns", func(w io.Writer) { io.WriteString(w, "F>U depth=1\n") })

	srv, err := obsv.Serve("127.0.0.1:0", obs)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, `core_export_skips{program="F"} 2`) {
		t.Errorf("/metrics code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/trace"); code != 200 || !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, `"export"`) {
		t.Errorf("/trace code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/statusz"); code != 200 || !strings.Contains(body, "== conns ==") || !strings.Contains(body, "F>U depth=1") {
		t.Errorf("/statusz code=%d body=%q", code, body)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline code=%d", code)
	}
	if code, _ := get(t, base+"/nosuch"); code != 404 {
		t.Errorf("unknown path code=%d, want 404", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Idle HTTP keep-alive connections from http.DefaultClient can linger;
	// close them so the leak check sees a quiet runtime.
	http.DefaultClient.CloseIdleConnections()
}

func TestServerCloseIsIdempotentAndNilSafe(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var nilSrv *obsv.Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil close: %v", err)
	}
	obs := obsv.New(obsv.Config{})
	srv, err := obsv.Serve("127.0.0.1:0", obs)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated Close must drain the listener exactly once, leak nothing,
	// and keep returning the first outcome.
	for i := 0; i < 3; i++ {
		if err := srv.Close(); err != nil {
			t.Fatalf("close #%d: %v", i+1, err)
		}
	}
}

func TestServerDynamicHandlers(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	obs := obsv.New(obsv.Config{})
	srv, err := obsv.Serve("127.0.0.1:0", obs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		http.DefaultClient.CloseIdleConnections()
	}()
	base := "http://" + srv.Addr()

	if code, _ := get(t, base+"/diag/stragglers"); code != 404 {
		t.Fatalf("unregistered path code=%d, want 404", code)
	}
	// Registration after Serve started must take effect (frameworks are
	// usually built after the introspection server binds).
	obs.Handle("/diag/stragglers", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "stragglers here")
	}))
	if code, body := get(t, base+"/diag/stragglers"); code != 200 || body != "stragglers here" {
		t.Fatalf("registered path code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/diag/stragglers") {
		t.Fatalf("index missing handler path: code=%d body=%q", code, body)
	}
	obs.Handle("/diag/stragglers", nil)
	if code, _ := get(t, base+"/diag/stragglers"); code != 404 {
		t.Fatalf("removed path still served")
	}
}

func TestStatusSectionsSorted(t *testing.T) {
	obs := obsv.New(obsv.Config{})
	obs.AddStatus("zz", func(w io.Writer) { io.WriteString(w, "last\n") })
	obs.AddStatus("aa", func(w io.Writer) { io.WriteString(w, "first\n") })
	var b strings.Builder
	obs.WriteStatus(&b)
	out := b.String()
	if strings.Index(out, "== aa ==") > strings.Index(out, "== zz ==") {
		t.Fatalf("sections out of order:\n%s", out)
	}
	obs.RemoveStatus("zz")
	b.Reset()
	obs.WriteStatus(&b)
	if strings.Contains(b.String(), "zz") {
		t.Fatal("removed section still rendered")
	}
}
