// Package obsv is the framework's runtime observability layer: a
// low-overhead registry of named atomic instruments (counters, gauges,
// histograms) with Prometheus text exposition, per-process span rings whose
// contents export as Chrome trace_event JSON (loadable in Perfetto, with
// cross-process flow edges), and a live-introspection HTTP server
// (/metrics, /trace, /statusz, /debug/pprof).
//
// The package is a leaf: it imports only the standard library, so every
// subsystem (core, transport, buffer, collective, harness) can hold its
// counters here instead of in ad-hoc stat structs. Hot-path discipline:
// instruments are preallocated at wiring time and updated with single atomic
// operations; span recording behind a disabled tracer is one nil check.
package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of an instrument (rendered in
// Prometheus label syntax). Keep cardinality bounded: programs, connection
// keys and ranks are fine; timestamps and request IDs are not.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic instrument. All methods are
// safe on a nil receiver (no-ops), so optional instruments cost one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instrument that can move both ways, with a
// compare-and-swap maximum for high-water marks.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value (atomic
// high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// defaultBounds are the histogram bucket upper bounds in nanoseconds:
// exponential from 1µs to ~17s, the range framework operations span.
func defaultBounds() []int64 {
	bounds := make([]int64, 25)
	v := int64(1000)
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Histogram is a fixed-bound atomic histogram (counts per bucket plus sum),
// rendered in Prometheus cumulative-bucket form. Observations beyond the
// last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Uint64
	inf     atomic.Uint64
	sum     atomic.Int64
}

// NewHistogram returns a histogram with the given ascending upper bounds
// (nil means the default nanosecond-duration bounds). Registry.Histogram is
// the usual constructor; this one serves tests and custom bucket layouts.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = defaultBounds()
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value (for duration instruments: nanoseconds).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
	// Linear scan: 25 bounds, and most observations land in the first few
	// comparisons' reach; a branchless binary search buys nothing here.
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	n := h.inf.Load()
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1]):
// the smallest bucket bound whose cumulative count reaches q of the total.
// Observations in the implicit +Inf bucket report the last finite bound, so
// the estimate never invents values beyond the layout. Returns 0 on an
// empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if cum >= target {
			return b
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// instrument kinds for exposition.
const (
	kindCounter = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type instrument struct {
	name   string
	labels []Label
	kind   int

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry is a process-wide table of named instruments. Lookups
// (get-or-create) take a mutex and happen at wiring time; the returned
// instruments are lock-free. Instrument names use dotted lower-case words
// ("core.export.skips"); the Prometheus exposition maps them to underscore
// form ("core_export_skips").
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*instrument
	order []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

// key renders the unique identity of an instrument: name plus labels.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// lookup returns the instrument registered under (name, labels), creating it
// with mk when absent. A kind mismatch on an existing name is a programming
// bug and panics.
func (r *Registry) lookup(name string, labels []Label, kind int, mk func() *instrument) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if ins, ok := r.byKey[k]; ok {
		if ins.kind != kind {
			panic(fmt.Sprintf("obsv: instrument %q re-registered with a different kind", k))
		}
		return ins
	}
	ins := mk()
	ins.name, ins.labels, ins.kind = name, labels, kind
	r.byKey[k] = ins
	r.order = append(r.order, ins)
	return ins
}

// Counter returns the named counter, creating it on first use. Safe on a
// nil registry (returns a nil, no-op counter).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter, func() *instrument {
		return &instrument{counter: &Counter{}}
	}).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge, func() *instrument {
		return &instrument{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed at exposition time —
// the bridge for subsystems that already keep their own counters under a
// lock (buffer pools, the coalescing layer). Re-registering a name replaces
// the function (a re-wired framework supersedes the old closure).
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	ins := r.lookup(name, labels, kindGaugeFunc, func() *instrument {
		return &instrument{}
	})
	r.mu.Lock()
	ins.fn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram (default duration bounds), creating
// it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindHistogram, func() *instrument {
		return &instrument{hist: NewHistogram(nil)}
	}).hist
}

// Snapshot returns every scalar instrument's current value keyed by its
// rendered identity (histograms contribute _count and _sum entries). Tests
// and the thin stat views use it; the hot path never does.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	instruments := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	out := make(map[string]float64, len(instruments))
	for _, ins := range instruments {
		k := key(ins.name, ins.labels)
		switch ins.kind {
		case kindCounter:
			out[k] = float64(ins.counter.Load())
		case kindGauge:
			out[k] = float64(ins.gauge.Load())
		case kindGaugeFunc:
			if ins.fn != nil {
				out[k] = ins.fn()
			}
		case kindHistogram:
			out[k+"_count"] = float64(ins.hist.Count())
			out[k+"_sum"] = float64(ins.hist.Sum())
		}
	}
	return out
}

// promName maps a dotted instrument name to Prometheus form.
func promName(name string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

// promLabels renders a label set ({a="b",c="d"}), empty for none.
func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", promName(l.Key), l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every instrument in the Prometheus text exposition
// format (version 0.0.4), grouped by metric name with one TYPE line each.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	instruments := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	// Group by name so instruments that share a metric name (different
	// labels) render contiguously under one TYPE header, as the format
	// requires; within a name, order by label set so the exposition does
	// not depend on wiring order (pinned by the golden test).
	sort.SliceStable(instruments, func(i, j int) bool {
		if instruments[i].name != instruments[j].name {
			return instruments[i].name < instruments[j].name
		}
		return key(instruments[i].name, instruments[i].labels) < key(instruments[j].name, instruments[j].labels)
	})
	lastName := ""
	for _, ins := range instruments {
		name := promName(ins.name)
		if ins.name != lastName {
			lastName = ins.name
			typ := "counter"
			switch ins.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
				return err
			}
		}
		ls := promLabels(ins.labels)
		var err error
		switch ins.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", name, ls, ins.counter.Load())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", name, ls, ins.gauge.Load())
		case kindGaugeFunc:
			v := 0.0
			if ins.fn != nil {
				v = ins.fn()
			}
			_, err = fmt.Fprintf(w, "%s%s %g\n", name, ls, v)
		case kindHistogram:
			err = writePromHistogram(w, name, ins.labels, ins.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram's cumulative buckets.
func writePromHistogram(w io.Writer, name string, labels []Label, h *Histogram) error {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		ls := append(append([]Label(nil), labels...), L("le", fmt.Sprintf("%g", float64(bound))))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(ls), cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	ls := append(append([]Label(nil), labels...), L("le", "+Inf"))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(ls), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, promLabels(labels), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(labels), cum)
	return err
}
