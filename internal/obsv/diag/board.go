package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Board accumulates straggler attribution for one program's process group.
// Every rank Note()s the outcome of every collective operation it finishes
// — which rank the piggybacked fold blamed, with what critical-path wait —
// and the board commits one consensus verdict per operation: the vote
// carrying the largest wait. The fold word is a max-reduction, so any vote
// is a lower bound on the op's true critical-path wait and the largest vote
// is the closest; ranks whose causal cone missed the discovery (a wait
// found in round r only reaches 2^(R-r) peers before the op ends) merely
// lose the per-op election to the rank that measured it directly.
//
// Note is the tail of every collective on every rank, and all ranks of a
// lock-step group arrive at it near-simultaneously, so the vote path is
// contention-free: votes gather in a slot ring through atomics (a counter
// and a max-CAS election word), each rank's transfer aggregate has a single
// writer, and the board mutex is taken once per operation — by whichever
// rank first moves a slot to a newer op and commits the finished one — plus
// by the (rare) snapshot reader.
type Board struct {
	program string
	size    int

	slots [boardSlots]opSlot

	mu      sync.Mutex
	ops     uint64 // committed operations
	unattr  uint64 // committed with no rank blamed
	perRank []rankAgg
}

// boardSlots is the in-flight operation window: votes for an op gather in
// slot seq%boardSlots and commit when the slot is claimed by a newer op;
// still-gathering slots are folded read-only into snapshots.
const boardSlots = 64

// opSlot gathers one in-flight operation's votes. best holds the current
// election winner packed as wait<<16 | uint16(rank); real votes always carry
// wait >= the attribution noise floor, so 0 doubles as "no vote yet" and the
// packing is monotone — a larger word is a larger wait — which makes the
// election a single max-CAS.
type opSlot struct {
	seq   atomic.Uint32
	votes atomic.Int32
	best  atomic.Uint64
}

type rankAgg struct {
	blamedOps uint64       // ops whose consensus blamed this rank (under mu)
	waitNS    int64        // cumulative consensus wait attributed to this rank (under mu)
	xferNS    atomic.Int64 // cumulative transfer time observed by this rank (single writer)
}

// NewBoard returns a straggler board for a size-rank program.
func NewBoard(program string, size int) *Board {
	return &Board{program: program, size: size, perRank: make([]rankAgg, size)}
}

// seqBefore reports whether a is older than b in wraparound order.
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// Program returns the program the board belongs to.
func (b *Board) Program() string {
	if b == nil {
		return ""
	}
	return b.program
}

// Note records one rank's verdict on one finished collective operation:
// seq identifies the op (the group's shared sequence counter), blamed is
// the rank this rank's fold converged on (-1 = nobody cleared the noise
// floor), maxWait that rank's critical-path wait, and xferNS the noting
// rank's own accumulated transfer time. Safe on a nil board.
func (b *Board) Note(seq uint32, rank, blamed int, maxWait, xferNS int64) {
	if b == nil {
		return
	}
	if rank >= 0 && rank < len(b.perRank) {
		b.perRank[rank].xferNS.Add(xferNS)
	}
	s := &b.slots[seq%boardSlots]
	for {
		cur := s.seq.Load()
		if cur == seq {
			break
		}
		if seqBefore(seq, cur) {
			// A vote for an op the slot has already moved past: the group
			// skewed by a whole window. Drop it — the op was committed (or
			// lost) when the slot was reclaimed.
			return
		}
		if s.seq.CompareAndSwap(cur, seq) {
			// This rank claimed the slot for the new op and owns committing
			// the finished one. A vote for the new op that slipped in before
			// the swaps below is erased — a nanoseconds-wide window that
			// only sheds a single vote of statistics.
			votes := s.votes.Swap(0)
			best := s.best.Swap(0)
			if votes > 0 {
				b.commit(best)
			}
			break
		}
	}
	s.votes.Add(1)
	if blamed >= 0 && blamed < b.size && maxWait > 0 {
		word := uint64(maxWait)<<16 | uint64(uint16(blamed))
		for {
			cur := s.best.Load()
			if word <= cur || s.best.CompareAndSwap(cur, word) {
				break
			}
		}
	}
}

// commit turns a reclaimed slot's election word into one per-op verdict.
func (b *Board) commit(best uint64) {
	b.mu.Lock()
	b.ops++
	if best != 0 {
		r := int(uint16(best))
		b.perRank[r].blamedOps++
		b.perRank[r].waitNS += int64(best >> 16)
	} else {
		b.unattr++
	}
	b.mu.Unlock()
}

// RankStat is one rank's row in a board snapshot.
type RankStat struct {
	Rank      int    `json:"rank"`
	BlamedOps uint64 `json:"blamed_ops"`
	WaitNS    int64  `json:"wait_ns"`
	XferNS    int64  `json:"xfer_ns"`
}

// Snapshot is a point-in-time copy of a board, including the verdicts of
// operations whose votes are still gathering (evaluated, not committed).
type Snapshot struct {
	Program      string     `json:"program"`
	Ops          uint64     `json:"ops"`
	Unattributed uint64     `json:"unattributed"`
	Ranks        []RankStat `json:"ranks"`
}

// Snapshot copies the board's current state.
func (b *Board) Snapshot() Snapshot {
	if b == nil {
		return Snapshot{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Snapshot{
		Program:      b.program,
		Ops:          b.ops,
		Unattributed: b.unattr,
		Ranks:        make([]RankStat, len(b.perRank)),
	}
	for i := range b.perRank {
		r := &b.perRank[i]
		s.Ranks[i] = RankStat{Rank: i, BlamedOps: r.blamedOps, WaitNS: r.waitNS, XferNS: r.xferNS.Load()}
	}
	// Fold in the still-gathering slots so the freshest ops are visible.
	for i := range b.slots {
		sl := &b.slots[i]
		if sl.votes.Load() <= 0 {
			continue
		}
		s.Ops++
		if best := sl.best.Load(); best != 0 {
			r := int(uint16(best))
			s.Ranks[r].BlamedOps++
			s.Ranks[r].WaitNS += int64(best >> 16)
		} else {
			s.Unattributed++
		}
	}
	return s
}

// Attributed returns the number of ops whose consensus blamed some rank.
func (s Snapshot) Attributed() uint64 { return s.Ops - s.Unattributed }

// Fraction returns the share of attributed ops that blamed rank — the
// straggler-detection hit rate the acceptance gate checks.
func (s Snapshot) Fraction(rank int) float64 {
	att := s.Attributed()
	if att == 0 || rank < 0 || rank >= len(s.Ranks) {
		return 0
	}
	return float64(s.Ranks[rank].BlamedOps) / float64(att)
}

// Top returns up to k ranks ordered by cumulative attributed wait,
// dropping ranks never blamed.
func (s Snapshot) Top(k int) []RankStat {
	top := make([]RankStat, 0, len(s.Ranks))
	for _, r := range s.Ranks {
		if r.BlamedOps > 0 {
			top = append(top, r)
		}
	}
	sort.SliceStable(top, func(i, j int) bool { return top[i].WaitNS > top[j].WaitNS })
	if len(top) > k {
		top = top[:k]
	}
	return top
}

// WriteStatus renders the board as a /statusz "diag:" section: the op
// totals and the top-3 stragglers by cumulative wait.
func (b *Board) WriteStatus(w io.Writer) {
	if b == nil {
		return
	}
	s := b.Snapshot()
	fmt.Fprintf(w, "    ops=%d attributed=%d unattributed=%d\n", s.Ops, s.Attributed(), s.Unattributed)
	for _, r := range s.Top(3) {
		fmt.Fprintf(w, "    straggler rank %d: blamed=%d (%.0f%%) wait=%v\n",
			r.Rank, r.BlamedOps, 100*s.Fraction(r.Rank), time.Duration(r.WaitNS))
	}
}

// stragglersPayload is the /diag/stragglers JSON shape.
type stragglersPayload struct {
	Programs []programStragglers `json:"programs"`
}

type programStragglers struct {
	Program      string     `json:"program"`
	Ops          uint64     `json:"ops"`
	Unattributed uint64     `json:"unattributed"`
	Top          []RankStat `json:"top"`
}

// Handler serves the /diag/stragglers endpoint: for every board returned by
// the boards closure (evaluated per request, so late-wired programs appear),
// the rolling top-k ranks by cumulative attributed wait, as JSON.
func Handler(k int, boards func() []*Board) http.Handler {
	if k <= 0 {
		k = 5
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var payload stragglersPayload
		for _, b := range boards() {
			if b == nil {
				continue
			}
			s := b.Snapshot()
			payload.Programs = append(payload.Programs, programStragglers{
				Program:      s.Program,
				Ops:          s.Ops,
				Unattributed: s.Unattributed,
				Top:          s.Top(k),
			})
		}
		sort.Slice(payload.Programs, func(i, j int) bool {
			return payload.Programs[i].Program < payload.Programs[j].Program
		})
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
}
