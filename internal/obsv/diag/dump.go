package diag

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Dump file format (all integers little-endian):
//
//	magic   "CPLFLT01"                                  8 bytes
//	program u16 length + bytes
//	rank    i32 (-1: recorder covers a whole program)
//	dumped  i64 nanoseconds on the recorder's clock
//	reason  u16 length + bytes
//	kinds   u8 count, then count × (u16 length + bytes) — Kind name table
//	ops     u8 count, then count × (u16 length + bytes) — Op name table
//	count   u32
//	records count × fixed 36 bytes (TS i64, Seq u32, Kind u8, Op u8,
//	        Round u16, Rank i32, A1 i64, A2 i64) + u8 note length + note
//
// The embedded name tables make the file self-describing: a decoder built
// against a different (older or newer) Kind/Op enumeration still prints the
// names the writer knew.
const dumpMagic = "CPLFLT01"

const eventFixedLen = 8 + 4 + 1 + 1 + 2 + 4 + 8 + 8

// maxNoteLen bounds the free-form note persisted per event.
const maxNoteLen = 255

// Dump is a decoded flight-recorder file.
type Dump struct {
	Program   string
	Rank      int // -1 when the recorder covers every local rank
	DumpedAt  int64
	Reason    string
	KindNames []string
	OpNames   []string
	Events    []Event // sorted by TS
}

// KindName resolves an event kind against the dump's embedded name table.
func (d *Dump) KindName(k Kind) string {
	if int(k) < len(d.KindNames) {
		return d.KindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// OpName resolves an event's collective op index against the dump's table.
func (d *Dump) OpName(op uint8) string {
	if int(op) < len(d.OpNames) {
		return d.OpNames[op]
	}
	return fmt.Sprintf("op(%d)", op)
}

func putStr(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func getStr(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("diag: truncated string length")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("diag: truncated string body (%d < %d)", len(b), n)
	}
	return string(b[:n]), b[n:], nil
}

// Dump writes the recorder's current contents to w, tagged with reason.
func (r *Recorder) Dump(w io.Writer, reason string) error {
	if r == nil {
		return nil
	}
	events := r.Snapshot()
	b := make([]byte, 0, len(dumpMagic)+64+len(events)*(eventFixedLen+1))
	b = append(b, dumpMagic...)
	b = putStr(b, r.program)
	ownerRank := int32(-1)
	b = binary.LittleEndian.AppendUint32(b, uint32(ownerRank))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Now()))
	b = putStr(b, reason)
	b = append(b, byte(numKinds))
	for _, n := range kindNames {
		b = putStr(b, n)
	}
	ops := r.opNames
	if len(ops) > 255 {
		ops = ops[:255]
	}
	b = append(b, byte(len(ops)))
	for _, n := range ops {
		b = putStr(b, n)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(events)))
	for _, e := range events {
		b = binary.LittleEndian.AppendUint64(b, uint64(e.TS))
		b = binary.LittleEndian.AppendUint32(b, e.Seq)
		b = append(b, byte(e.Kind), e.Op)
		b = binary.LittleEndian.AppendUint16(b, e.Round)
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Rank))
		b = binary.LittleEndian.AppendUint64(b, uint64(e.A1))
		b = binary.LittleEndian.AppendUint64(b, uint64(e.A2))
		note := e.Note
		if len(note) > maxNoteLen {
			note = note[:maxNoteLen]
		}
		b = append(b, byte(len(note)))
		b = append(b, note...)
	}
	_, err := w.Write(b)
	if err == nil {
		r.dumps.Inc()
	}
	return err
}

// DumpFile writes a dump into dir (created if missing) and returns the file
// path. File names are "flight-<program>-*.cpfl" with a unique suffix, so
// several recorders — or several dumps of one recorder — never collide.
func (r *Recorder) DumpFile(dir, reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	f, err := os.CreateTemp(dir, "flight-"+r.program+"-*.cpfl")
	if err != nil {
		return "", err
	}
	if err := r.Dump(f, reason); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return f.Name(), nil
}

// DumpAll dumps every non-nil recorder into dir and returns the file paths.
func DumpAll(dir, reason string, recs ...*Recorder) ([]string, error) {
	var paths []string
	for _, r := range recs {
		if r == nil {
			continue
		}
		p, err := r.DumpFile(dir, reason)
		if err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// DumpOnPanic is a defer helper: if the goroutine is panicking it records a
// KindPanic event, dumps every recorder into dir, and re-panics.
//
//	defer diag.DumpOnPanic(dir, rec)
func DumpOnPanic(dir string, recs ...*Recorder) {
	v := recover()
	if v == nil {
		return
	}
	msg := fmt.Sprint(v)
	for _, r := range recs {
		r.Record(Event{Kind: KindPanic, Rank: -1, Note: msg})
	}
	DumpAll(dir, "panic: "+msg, recs...)
	panic(v)
}

// DecodeDump parses a flight-recorder dump from raw bytes.
func DecodeDump(b []byte) (*Dump, error) {
	if len(b) < len(dumpMagic) || string(b[:len(dumpMagic)]) != dumpMagic {
		return nil, fmt.Errorf("diag: not a flight-recorder dump (bad magic)")
	}
	b = b[len(dumpMagic):]
	d := &Dump{}
	var err error
	if d.Program, b, err = getStr(b); err != nil {
		return nil, err
	}
	if len(b) < 4+8 {
		return nil, fmt.Errorf("diag: truncated dump header")
	}
	d.Rank = int(int32(binary.LittleEndian.Uint32(b)))
	d.DumpedAt = int64(binary.LittleEndian.Uint64(b[4:]))
	b = b[12:]
	if d.Reason, b, err = getStr(b); err != nil {
		return nil, err
	}
	for _, table := range []*[]string{&d.KindNames, &d.OpNames} {
		if len(b) < 1 {
			return nil, fmt.Errorf("diag: truncated name table")
		}
		n := int(b[0])
		b = b[1:]
		for i := 0; i < n; i++ {
			var s string
			if s, b, err = getStr(b); err != nil {
				return nil, err
			}
			*table = append(*table, s)
		}
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("diag: truncated record count")
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	d.Events = make([]Event, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < eventFixedLen+1 {
			return nil, fmt.Errorf("diag: truncated record %d/%d", i, count)
		}
		e := Event{
			TS:    int64(binary.LittleEndian.Uint64(b)),
			Seq:   binary.LittleEndian.Uint32(b[8:]),
			Kind:  Kind(b[12]),
			Op:    b[13],
			Round: binary.LittleEndian.Uint16(b[14:]),
			Rank:  int32(binary.LittleEndian.Uint32(b[16:])),
			A1:    int64(binary.LittleEndian.Uint64(b[20:])),
			A2:    int64(binary.LittleEndian.Uint64(b[28:])),
		}
		nlen := int(b[eventFixedLen])
		b = b[eventFixedLen+1:]
		if len(b) < nlen {
			return nil, fmt.Errorf("diag: truncated note in record %d", i)
		}
		e.Note = string(b[:nlen])
		b = b[nlen:]
		d.Events = append(d.Events, e)
	}
	sortEvents(d.Events)
	return d, nil
}

// ReadDump reads and decodes a flight-recorder dump file.
func ReadDump(path string) (*Dump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := DecodeDump(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// TimelineEntry is one event of a merged cross-rank timeline, carrying the
// dump it came from for name resolution.
type TimelineEntry struct {
	Dump  *Dump
	Event Event
}

// MergeTimeline interleaves the events of several dumps into one timeline
// ordered by timestamp (the recorders' shared clock — virtual time under
// DST, wall time otherwise), breaking ties by program then rank then seq so
// the merge is deterministic.
func MergeTimeline(dumps ...*Dump) []TimelineEntry {
	var out []TimelineEntry
	for _, d := range dumps {
		if d == nil {
			continue
		}
		for _, e := range d.Events {
			out = append(out, TimelineEntry{Dump: d, Event: e})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Event.TS != b.Event.TS {
			return a.Event.TS < b.Event.TS
		}
		if a.Dump.Program != b.Dump.Program {
			return a.Dump.Program < b.Dump.Program
		}
		if a.Event.Rank != b.Event.Rank {
			return a.Event.Rank < b.Event.Rank
		}
		return a.Event.Seq < b.Event.Seq
	})
	return out
}

// WriteTimeline renders the merged timeline of several dumps as one line
// per event: relative milliseconds, program:rank lane, kind, and the
// kind-specific fields. This is what the coupleflight subcommand prints.
func WriteTimeline(w io.Writer, dumps ...*Dump) error {
	entries := MergeTimeline(dumps...)
	if len(entries) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	epoch := entries[0].Event.TS
	for _, d := range dumps {
		if d != nil {
			fmt.Fprintf(w, "# %s: %d events, dumped: %s\n", d.Program, len(d.Events), d.Reason)
		}
	}
	for _, en := range entries {
		e := en.Event
		lane := fmt.Sprintf("%s:%d", en.Dump.Program, e.Rank)
		if e.Rank < 0 {
			lane = en.Dump.Program + ":rep"
		}
		line := fmt.Sprintf("%12.3fms  %-8s %-12s", float64(e.TS-epoch)/1e6, lane, en.Dump.KindName(e.Kind))
		switch e.Kind {
		case KindCollective:
			line += fmt.Sprintf(" op=%s seq=%d blamed=%d wait=%dns", en.Dump.OpName(e.Op), e.Seq, e.A1, e.A2)
		case KindExportStall:
			line += fmt.Sprintf(" stall=%dns", e.A1)
		case KindCheckpoint:
			line += fmt.Sprintf(" seq=%d bytes=%d", e.Seq, e.A1)
		case KindRejoin:
			line += fmt.Sprintf(" epoch=%d", e.A1)
		case KindRevoke:
			line += fmt.Sprintf(" epoch=%d initiator=%d", e.A1, e.A2)
		case KindAgree:
			line += fmt.Sprintf(" failed=%d epoch=%d", e.A1, e.A2)
		case KindShrink:
			line += fmt.Sprintf(" epoch=%d size=%d", e.A1, e.A2)
		default:
			if e.Seq != 0 {
				line += fmt.Sprintf(" seq=%d", e.Seq)
			}
		}
		if e.Note != "" {
			line += " " + e.Note
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
}
