// Package diag is the coupling-aware diagnosis layer: it turns the flat
// latency histograms of the observability layer into answers to "who was the
// straggler and where did the time go".
//
// Two pieces live here. The straggler Board accumulates the per-collective
// critical-path attribution that internal/collective piggybacks on its own
// round payloads (zero extra messages): for every finished operation each
// rank learns the blamed rank and its wait/transfer split, and Note()s them
// here. The flight Recorder is a fixed-size lock-free ring of recent
// protocol, collective and recovery events that Dump()s to a self-describing
// binary file on panic, invariant violation, heartbeat-declared peer death
// or SIGQUIT — the crashed process's last seconds, decodable offline with
// the coupleflight subcommand of cmd/couplebench.
//
// The package sits beside obsv (instruments) and below core/collective/dst;
// it imports only obsv and vclock, so every layer can record into it.
package diag

import (
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/vclock"
)

// Kind classifies a flight-recorder event.
type Kind uint8

const (
	// KindCollective: one collective operation finished on a rank. Seq/Op/
	// Round identify it; A1 is the blamed straggler rank (-1 none), A2 the
	// rank's accumulated wait nanoseconds for the op.
	KindCollective Kind = iota
	// KindExportStall: an export blocked on the bounded send queue; A1 is
	// the stall nanoseconds.
	KindExportStall
	// KindCheckpoint: a checkpoint contribution completed; Seq is the
	// checkpoint sequence, A1 the encoded byte count.
	KindCheckpoint
	// KindRejoin: a peer's rejoin announcement was handled; Rank is the
	// rejoining rank, A1 its restart epoch.
	KindRejoin
	// KindPeerDown: the failure detector declared a peer dead; Rank is the
	// dead rank.
	KindPeerDown
	// KindViolation: a protocol invariant check failed (DST); Note carries
	// the violation text.
	KindViolation
	// KindPanic: recorded by DumpOnPanic just before re-panicking.
	KindPanic
	// KindMark: free-form annotation.
	KindMark
	// KindRevoke: an intra-program communicator was revoked; A1 is the
	// group epoch, A2 is 1 when this rank initiated the revocation.
	KindRevoke
	// KindAgree: a failure agreement decided; A1 is the agreed failed-rank
	// count, A2 the group epoch, Note the failed set.
	KindAgree
	// KindShrink: the group shrank to the survivors; A1 is the new epoch,
	// A2 the new group size, Note the "old->new" re-ranking of this rank.
	KindShrink

	numKinds = int(KindShrink) + 1
)

var kindNames = [numKinds]string{
	"collective", "export-stall", "checkpoint", "rejoin",
	"peer-down", "violation", "panic", "mark",
	"revoke", "agree", "shrink",
}

// String returns the event-kind name used in dumps and timelines.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Event is one flight-recorder record. The fixed fields serialize to 36
// bytes; Note is truncated to 255 bytes on dump.
type Event struct {
	TS    int64  // nanoseconds on the recorder's clock (stamped by Record)
	Seq   uint32 // operation / checkpoint sequence, 0 when not applicable
	Kind  Kind
	Op    uint8  // collective op index (see OpNames), 0 otherwise
	Round uint16 // round within the operation, 0 otherwise
	Rank  int32  // rank the event belongs to; -1 = representative/process
	A1    int64  // kind-specific scalar
	A2    int64  // kind-specific scalar
	Note  string // short free-form detail
}

// Recorder is the per-program flight recorder: a fixed-size ring written
// with the same lock-free claim-then-publish pattern as the span Ring, so
// any goroutine can record without coordination and a dump never stops the
// world. A nil *Recorder no-ops on every method.
type Recorder struct {
	program string
	clock   vclock.Clock
	opNames []string
	next    atomic.Uint64
	slots   []atomic.Pointer[Event]

	events *obsv.Counter // diag.flight.events
	dumps  *obsv.Counter // diag.flight.dumps
}

// DefaultEvents is the ring capacity when NewRecorder is given zero.
const DefaultEvents = 1 << 12

// NewRecorder returns a flight recorder for one program holding the most
// recent size events. The clock orders the timeline across ranks — pass the
// framework clock, which is the virtual clock under DST, so merged dumps
// sort by simulated time (nil means wall time).
func NewRecorder(program string, size int, clock vclock.Clock) *Recorder {
	if size <= 0 {
		size = DefaultEvents
	}
	return &Recorder{
		program: program,
		clock:   vclock.Or(clock),
		slots:   make([]atomic.Pointer[Event], size),
	}
}

// SetRegistry registers the diag.flight.{events,dumps} counters in reg.
func (r *Recorder) SetRegistry(reg *obsv.Registry) {
	if r == nil {
		return
	}
	r.events = reg.Counter("diag.flight.events", obsv.L("program", r.program))
	r.dumps = reg.Counter("diag.flight.dumps", obsv.L("program", r.program))
}

// SetOpNames installs the table mapping Event.Op indexes to operation names
// embedded in dumps (internal/collective passes its op tags).
func (r *Recorder) SetOpNames(names []string) {
	if r != nil {
		r.opNames = names
	}
}

// Program returns the program this recorder belongs to.
func (r *Recorder) Program() string {
	if r == nil {
		return ""
	}
	return r.program
}

// Clock returns the clock events are stamped on (Wall for a nil recorder).
func (r *Recorder) Clock() vclock.Clock {
	if r == nil {
		return vclock.Wall
	}
	return r.clock
}

// Now returns the current nanosecond timestamp on the recorder's clock.
func (r *Recorder) Now() int64 {
	if r == nil {
		return time.Now().UnixNano()
	}
	return r.clock.Now().UnixNano()
}

// Record stamps e with the recorder's clock and appends it, overwriting the
// oldest event once the ring wraps. Safe on a nil recorder and from any
// goroutine.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	e.TS = r.Now()
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(&e)
	r.events.Inc()
}

// Len returns the number of events currently held (≤ ring capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot copies out the published events sorted by timestamp (best effort
// while writers are active).
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.Len())
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sortEvents(out)
	return out
}
