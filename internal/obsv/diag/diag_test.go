package diag

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obsv"
)

func TestRecorderDumpRoundTrip(t *testing.T) {
	reg := obsv.NewRegistry()
	r := NewRecorder("F", 8, nil)
	r.SetRegistry(reg)
	r.SetOpNames([]string{"barrier", "bcast", "reduce", "allreduce"})

	r.Record(Event{Kind: KindCollective, Seq: 1, Op: 3, Rank: 0, A1: 2, A2: 1500})
	r.Record(Event{Kind: KindExportStall, Rank: 1, A1: 42})
	r.Record(Event{Kind: KindViolation, Rank: -1, Note: "delivery order violated"})

	dir := t.TempDir()
	path, err := r.DumpFile(dir, "test dump")
	if err != nil {
		t.Fatalf("DumpFile: %v", err)
	}
	d, err := ReadDump(path)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if d.Program != "F" || d.Reason != "test dump" || d.Rank != -1 {
		t.Fatalf("header mismatch: %+v", d)
	}
	if len(d.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(d.Events))
	}
	var coll, viol *Event
	for i := range d.Events {
		switch d.Events[i].Kind {
		case KindCollective:
			coll = &d.Events[i]
		case KindViolation:
			viol = &d.Events[i]
		}
	}
	if coll == nil || coll.Seq != 1 || coll.A1 != 2 || coll.A2 != 1500 || d.OpName(coll.Op) != "allreduce" {
		t.Fatalf("collective event mismatch: %+v", coll)
	}
	if viol == nil || viol.Note != "delivery order violated" || viol.Rank != -1 {
		t.Fatalf("violation event mismatch: %+v", viol)
	}
	if got := reg.Snapshot()["diag.flight.events{program=F}"]; got != 3 {
		t.Fatalf("diag.flight.events = %v, want 3", got)
	}
	if got := reg.Snapshot()["diag.flight.dumps{program=F}"]; got != 1 {
		t.Fatalf("diag.flight.dumps = %v, want 1", got)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder("F", 4, nil)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindMark, Seq: uint32(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	events := r.Snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot holds %d, want 4", len(events))
	}
	for _, e := range events {
		if e.Seq < 6 {
			t.Fatalf("old event %d survived the wrap", e.Seq)
		}
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder("F", 64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindMark, Rank: int32(g), Seq: uint32(i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want full ring", r.Len())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindMark})
	r.SetRegistry(obsv.NewRegistry())
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder not inert")
	}
	if err := r.Dump(&bytes.Buffer{}, "x"); err != nil {
		t.Fatal(err)
	}
	if r.Clock() == nil {
		t.Fatal("nil recorder clock")
	}
}

func TestDecodeDumpRejectsGarbage(t *testing.T) {
	if _, err := DecodeDump([]byte("not a dump at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	r := NewRecorder("F", 4, nil)
	r.Record(Event{Kind: KindMark, Note: "hello"})
	var buf bytes.Buffer
	if err := r.Dump(&buf, "trunc"); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(dumpMagic); cut < len(full); cut += 7 {
		if _, err := DecodeDump(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestMergeTimelineOrdersAcrossDumps(t *testing.T) {
	a := &Dump{Program: "A", KindNames: kindNames[:], Events: []Event{
		{TS: 30, Kind: KindMark, Rank: 0, Note: "a-late"},
		{TS: 10, Kind: KindMark, Rank: 0, Note: "a-early"},
	}}
	b := &Dump{Program: "B", KindNames: kindNames[:], Events: []Event{
		{TS: 20, Kind: KindMark, Rank: 1, Note: "b-mid"},
	}}
	sortEvents(a.Events)
	tl := MergeTimeline(a, b)
	if len(tl) != 3 {
		t.Fatalf("merged %d entries, want 3", len(tl))
	}
	got := []string{tl[0].Event.Note, tl[1].Event.Note, tl[2].Event.Note}
	want := []string{"a-early", "b-mid", "a-late"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("timeline order %v, want %v", got, want)
		}
	}
	var out bytes.Buffer
	if err := WriteTimeline(&out, a, b); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "A:0") || !strings.Contains(s, "B:1") || !strings.Contains(s, "b-mid") {
		t.Fatalf("timeline rendering missing lanes:\n%s", s)
	}
}

func TestDumpOnPanicWritesFileAndRepanics(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder("F", 8, nil)
	r.Record(Event{Kind: KindMark, Note: "before the fall"})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic swallowed")
			}
		}()
		func() {
			defer DumpOnPanic(dir, r)
			panic("boom")
		}()
	}()
	matches, _ := filepath.Glob(filepath.Join(dir, "flight-F-*.cpfl"))
	if len(matches) != 1 {
		t.Fatalf("want 1 dump file, got %v", matches)
	}
	d, err := ReadDump(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.Reason, "panic: boom") {
		t.Fatalf("reason %q", d.Reason)
	}
	found := false
	for _, e := range d.Events {
		if e.Kind == KindPanic && e.Note == "boom" {
			found = true
		}
	}
	if !found {
		t.Fatal("panic event missing from dump")
	}
}

func TestBoardAttributionAndHandler(t *testing.T) {
	b := NewBoard("F", 4)
	// 10 ops: three ranks blame rank 2, rank 3 saw nothing — the per-op
	// election must settle on rank 2 every time.
	for seq := uint32(0); seq < 10; seq++ {
		for rank := 0; rank < 3; rank++ {
			b.Note(seq, rank, 2, 1_000_000, 5_000)
		}
		b.Note(seq, 3, -1, 0, 0)
	}
	// One op where a small noise vote for rank 1 loses to the direct 1ms
	// observation of rank 2.
	b.Note(10, 0, 1, 50_000, 0)
	b.Note(10, 1, 2, 1_000_000, 0)
	b.Note(10, 2, -1, 0, 0)
	b.Note(10, 3, -1, 0, 0)
	// A still-gathering op with only unattributed votes so far.
	b.Note(11, 2, -1, 0, 0)
	s := b.Snapshot()
	if s.Ops != 12 || s.Unattributed != 1 || s.Attributed() != 11 {
		t.Fatalf("counts: %+v", s)
	}
	if f := s.Fraction(2); f != 1.0 {
		t.Fatalf("Fraction(2) = %v, want 1", f)
	}
	top := s.Top(2)
	if len(top) != 1 || top[0].Rank != 2 || top[0].BlamedOps != 11 {
		t.Fatalf("Top = %+v", top)
	}
	var status bytes.Buffer
	b.WriteStatus(&status)
	if !strings.Contains(status.String(), "straggler rank 2") {
		t.Fatalf("status missing straggler: %q", status.String())
	}

	h := Handler(3, func() []*Board { return []*Board{b, nil} })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/diag/stragglers", nil))
	var payload struct {
		Programs []struct {
			Program string     `json:"program"`
			Ops     uint64     `json:"ops"`
			Top     []RankStat `json:"top"`
		} `json:"programs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(payload.Programs) != 1 || payload.Programs[0].Program != "F" ||
		len(payload.Programs[0].Top) != 1 || payload.Programs[0].Top[0].Rank != 2 {
		t.Fatalf("payload: %s", rec.Body.String())
	}
}

func TestDumpAllSkipsNil(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder("G", 4, nil)
	r.Record(Event{Kind: KindMark})
	paths, err := DumpAll(dir, "because", nil, r, nil)
	if err != nil || len(paths) != 1 {
		t.Fatalf("paths=%v err=%v", paths, err)
	}
	if _, err := os.Stat(paths[0]); err != nil {
		t.Fatal(err)
	}
}
