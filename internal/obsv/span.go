package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded protocol operation: an export decision, an import
// wait, a forwarded request, a buddy-help send. Spans that belong to the
// same logical request share a Flow ID (the trace ID piggybacked on the
// wire), which becomes a Perfetto flow arrow crossing process lanes.
type Span struct {
	Name   string // operation name ("export", "import", "forward", ...)
	TS     int64  // start, nanoseconds since the tracer epoch
	Dur    int64  // duration in nanoseconds (0 renders as an instant)
	Flow   uint64 // trace ID linking causally related spans; 0 = none
	Arg    int64  // operation-specific scalar (request ID, bytes, step)
	Detail string // free-form annotation ("skip", "copy", region)
}

// Ring is a fixed-size lock-free span buffer for one process lane. Writers
// claim a slot with an atomic increment and publish the span with an atomic
// pointer store; the reader (trace export) loads pointers atomically, so a
// live run can be dumped without stopping the world and without racing.
type Ring struct {
	proc  string // lane name, e.g. "F:2" or "U:rep"
	pid   int    // Chrome trace pid (per program)
	tid   int    // Chrome trace tid (rank+2; rep is 1)
	next  atomic.Uint64
	slots []atomic.Pointer[Span]
}

// Record appends a span to the ring, overwriting the oldest entry once the
// ring wraps. Safe on a nil ring and from any goroutine.
func (r *Ring) Record(s Span) {
	if r == nil {
		return
	}
	i := r.next.Add(1) - 1
	sp := s
	r.slots[i%uint64(len(r.slots))].Store(&sp)
}

// Len returns the number of spans currently held (≤ ring capacity).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// snapshot copies out the published spans, oldest first (best effort while
// writers are active).
func (r *Ring) snapshot() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.Len())
	for i := range r.slots {
		if sp := r.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// DefaultRingSize is the per-process span capacity when the tracer's
// configuration leaves it zero.
const DefaultRingSize = 1 << 14

// Tracer owns the process lanes and mints trace IDs. A nil *Tracer is the
// disabled state: every method no-ops, so the hot path pays one nil check.
type Tracer struct {
	epoch    time.Time
	ringSize int
	nextID   atomic.Uint64

	mu    sync.Mutex
	rings []*Ring
	pids  map[string]int // program -> Chrome pid
}

// NewTracer returns an enabled tracer whose rings hold ringSize spans each
// (0 means DefaultRingSize).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	t := &Tracer{epoch: time.Now(), ringSize: ringSize, pids: make(map[string]int)}
	// Seed so IDs from independent runs in one process rarely collide with
	// zero (0 means "no trace" on the wire).
	t.nextID.Store(1)
	return t
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// NewSpanID mints a nonzero trace ID for a new logical request.
func (t *Tracer) NewSpanID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// Now returns nanoseconds since the tracer epoch (0 when disabled).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Ring returns (creating on first use) the span lane for a process. The
// lane name is "program:rank" or "program:rep"; program decides the Chrome
// pid, lane the tid. Returns nil when the tracer is disabled, so callers
// can store the result and nil-check per record.
func (t *Tracer) Ring(program string, rank int) *Ring {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	proc := fmt.Sprintf("%s:%d", program, rank)
	tid := rank + 2
	if rank < 0 { // representative lane
		proc = program + ":rep"
		tid = 1
	}
	for _, r := range t.rings {
		if r.proc == proc {
			return r
		}
	}
	pid, ok := t.pids[program]
	if !ok {
		pid = len(t.pids) + 1
		t.pids[program] = pid
	}
	r := &Ring{proc: proc, pid: pid, tid: tid, slots: make([]atomic.Pointer[Span], t.ringSize)}
	t.rings = append(t.rings, r)
	return r
}

// chromeEvent is one entry of the Chrome trace_event JSON array. Perfetto
// and chrome://tracing both consume this shape.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace dumps every ring as Chrome trace_event JSON: "M"
// metadata events naming the process/thread lanes, "X" complete events for
// the spans, and "s"/"t"/"f" flow events stitching spans that share a Flow
// ID into cross-process arrows (exporter decision → importer receipt).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	rings := append([]*Ring(nil), t.rings...)
	pids := make(map[string]int, len(t.pids))
	for k, v := range t.pids {
		pids[k] = v
	}
	t.mu.Unlock()

	var events []chromeEvent
	for prog, pid := range pids {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "program " + prog},
		})
	}
	type flowPoint struct {
		ts       float64
		pid, tid int
	}
	flows := make(map[uint64][]flowPoint)
	for _, r := range rings {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: r.pid, Tid: r.tid,
			Args: map[string]any{"name": r.proc},
		})
		for _, sp := range r.snapshot() {
			ev := chromeEvent{
				Name: sp.Name, Ph: "X", Cat: "proto",
				TS: float64(sp.TS) / 1e3, Dur: float64(sp.Dur) / 1e3,
				Pid: r.pid, Tid: r.tid,
			}
			if ev.Dur <= 0 {
				ev.Dur = 1 // zero-width slices are invisible in Perfetto
			}
			args := map[string]any{}
			if sp.Arg != 0 {
				args["arg"] = sp.Arg
			}
			if sp.Detail != "" {
				args["detail"] = sp.Detail
			}
			if sp.Flow != 0 {
				args["flow"] = sp.Flow
				flows[sp.Flow] = append(flows[sp.Flow], flowPoint{ev.TS, r.pid, r.tid})
			}
			if len(args) > 0 {
				ev.Args = args
			}
			events = append(events, ev)
		}
	}
	// Flow arrows: start at the earliest span of a flow, step through the
	// rest, finish at the last. bp:"e" binds to the enclosing slice.
	flowIDs := make([]uint64, 0, len(flows))
	for id := range flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		pts := flows[id]
		if len(pts) < 2 {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].ts < pts[j].ts })
		for i, p := range pts {
			ph := "t"
			switch i {
			case 0:
				ph = "s"
			case len(pts) - 1:
				ph = "f"
			}
			events = append(events, chromeEvent{
				Name: "req", Ph: ph, Cat: "flow", ID: fmt.Sprintf("%#x", id),
				TS: p.ts, Pid: p.pid, Tid: p.tid, BP: "e",
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
