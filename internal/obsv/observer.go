package obsv

import (
	"io"
	"net/http"
	"sort"
	"sync"
)

// Config selects what an Observer records.
type Config struct {
	// Tracing enables span recording and trace-ID piggybacking on the wire.
	// When false the Tracer is nil and the hot path pays one nil check.
	Tracing bool
	// RingSize is the per-process span capacity (0 = DefaultRingSize).
	RingSize int
}

// Observer bundles the metrics registry, the (optional) span tracer, and
// the named status sections rendered at /statusz. One Observer serves a
// whole OS process; frameworks and commands share it.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer

	mu       sync.Mutex
	status   map[string]func(io.Writer)
	handlers map[string]http.Handler
}

// New returns an Observer with a fresh registry, plus a tracer when
// cfg.Tracing is set.
func New(cfg Config) *Observer {
	o := &Observer{
		Registry: NewRegistry(),
		status:   make(map[string]func(io.Writer)),
		handlers: make(map[string]http.Handler),
	}
	if cfg.Tracing {
		o.Tracer = NewTracer(cfg.RingSize)
	}
	return o
}

// Handle registers (or replaces) an HTTP handler the introspection server
// exposes at path (exact match, e.g. "/diag/stragglers"). Lookups happen per
// request, so handlers wired after Serve started — a framework built later
// in main — still appear. A nil handler removes the registration.
func (o *Observer) Handle(path string, h http.Handler) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if h == nil {
		delete(o.handlers, path)
	} else {
		o.handlers[path] = h
	}
	o.mu.Unlock()
}

// HandlerFor returns the handler registered at path, or nil.
func (o *Observer) HandlerFor(path string) http.Handler {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.handlers[path]
}

// handlerPaths returns the registered handler paths, sorted (for the index
// page).
func (o *Observer) handlerPaths() []string {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	paths := make([]string, 0, len(o.handlers))
	for p := range o.handlers {
		paths = append(paths, p)
	}
	o.mu.Unlock()
	sort.Strings(paths)
	return paths
}

// AddStatus registers (or replaces) a named /statusz section. The function
// is invoked per request; it should render short plain text.
func (o *Observer) AddStatus(name string, fn func(io.Writer)) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.status[name] = fn
	o.mu.Unlock()
}

// RemoveStatus drops a named section (used when a framework shuts down).
func (o *Observer) RemoveStatus(name string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	delete(o.status, name)
	o.mu.Unlock()
}

// WriteStatus renders every status section, sorted by name.
func (o *Observer) WriteStatus(w io.Writer) {
	if o == nil {
		return
	}
	o.mu.Lock()
	names := make([]string, 0, len(o.status))
	for n := range o.status {
		names = append(names, n)
	}
	fns := make([]func(io.Writer), 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, o.status[n])
	}
	o.mu.Unlock()
	for i, n := range names {
		io.WriteString(w, "== "+n+" ==\n")
		fns[i](w)
		io.WriteString(w, "\n")
	}
}
