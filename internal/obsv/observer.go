package obsv

import (
	"io"
	"sort"
	"sync"
)

// Config selects what an Observer records.
type Config struct {
	// Tracing enables span recording and trace-ID piggybacking on the wire.
	// When false the Tracer is nil and the hot path pays one nil check.
	Tracing bool
	// RingSize is the per-process span capacity (0 = DefaultRingSize).
	RingSize int
}

// Observer bundles the metrics registry, the (optional) span tracer, and
// the named status sections rendered at /statusz. One Observer serves a
// whole OS process; frameworks and commands share it.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer

	mu     sync.Mutex
	status map[string]func(io.Writer)
}

// New returns an Observer with a fresh registry, plus a tracer when
// cfg.Tracing is set.
func New(cfg Config) *Observer {
	o := &Observer{Registry: NewRegistry(), status: make(map[string]func(io.Writer))}
	if cfg.Tracing {
		o.Tracer = NewTracer(cfg.RingSize)
	}
	return o
}

// AddStatus registers (or replaces) a named /statusz section. The function
// is invoked per request; it should render short plain text.
func (o *Observer) AddStatus(name string, fn func(io.Writer)) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.status[name] = fn
	o.mu.Unlock()
}

// RemoveStatus drops a named section (used when a framework shuts down).
func (o *Observer) RemoveStatus(name string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	delete(o.status, name)
	o.mu.Unlock()
}

// WriteStatus renders every status section, sorted by name.
func (o *Observer) WriteStatus(w io.Writer) {
	if o == nil {
		return
	}
	o.mu.Lock()
	names := make([]string, 0, len(o.status))
	for n := range o.status {
		names = append(names, n)
	}
	fns := make([]func(io.Writer), 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, o.status[n])
	}
	o.mu.Unlock()
	for i, n := range names {
		io.WriteString(w, "== "+n+" ==\n")
		fns[i](w)
		io.WriteString(w, "\n")
	}
}
