package obsv

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestMetricsGolden pins the Prometheus exposition byte-for-byte: stable
// instrument ordering (sorted by name, label sets contiguous under one TYPE
// header), cumulative histogram buckets, and the name/label mangling. Run
// with -update to rewrite the golden file after an intentional change.
func TestMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.export.skips", L("program", "F")).Add(3)
	r.Counter("core.export.skips", L("program", "U")).Add(1)
	r.Counter("transport.frames.sent").Add(128)
	r.Gauge("core.export.queue.depth", L("conn", "F>U")).Set(7)
	r.GaugeFunc("buffer.pool.bytes", func() float64 { return 4096 })
	h := r.Histogram("collective.allreduce.ns", L("program", "F"))
	for _, v := range []int64{500, 1500, 3000, 3000, 1 << 40} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The ordering must also be deterministic across registries built in a
	// different wiring order.
	r2 := NewRegistry()
	r2.Histogram("collective.allreduce.ns", L("program", "F"))
	r2.GaugeFunc("buffer.pool.bytes", func() float64 { return 4096 })
	r2.Gauge("core.export.queue.depth", L("conn", "F>U")).Set(7)
	r2.Counter("transport.frames.sent").Add(128)
	r2.Counter("core.export.skips", L("program", "U")).Add(1)
	r2.Counter("core.export.skips", L("program", "F")).Add(3)
	h2 := r2.Histogram("collective.allreduce.ns", L("program", "F"))
	for _, v := range []int64{500, 1500, 3000, 3000, 1 << 40} {
		h2.Observe(v)
	}
	var buf2 bytes.Buffer
	if err := r2.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), want) {
		t.Errorf("exposition depends on wiring order\n--- got ---\n%s", buf2.Bytes())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile")
	}
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile")
	}
	// 100 observations of ~2µs and one 10ms outlier: p50/p95 sit in the
	// 2µs bucket, p99+ must not be dragged past the outlier's bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1800)
	}
	h.Observe(10_000_000)
	if q := h.Quantile(0.50); q != 2000 {
		t.Fatalf("p50 = %d, want 2000", q)
	}
	if q := h.Quantile(0.95); q != 2000 {
		t.Fatalf("p95 = %d, want 2000", q)
	}
	if q := h.Quantile(1.0); q < 10_000_000 || q > 20_000_000 {
		t.Fatalf("p100 = %d, want the outlier's bucket bound", q)
	}
	// Out-of-range q clamps instead of misbehaving.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping broken")
	}
	// Everything beyond the last bound reports the last finite bound.
	small := NewHistogram([]int64{10, 20})
	small.Observe(1000)
	if q := small.Quantile(0.99); q != 20 {
		t.Fatalf("+Inf-bucket quantile = %d, want last bound 20", q)
	}
}
