package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("core.export.skips", L("program", "F"))
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instrument.
	if r.Counter("core.export.skips", L("program", "F")) != c {
		t.Fatal("lookup did not return the existing counter")
	}
	// Different labels are distinct.
	if r.Counter("core.export.skips", L("program", "U")).Load() != 0 {
		t.Fatal("differently-labelled counter shared state")
	}

	g := r.Gauge("core.pipeline.depth", L("conn", "F>U"))
	g.Set(3)
	g.Add(-1)
	if got := g.Load(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.SetMax(10)
	g.SetMax(7)
	if got := g.Load(); got != 10 {
		t.Fatalf("gauge after SetMax = %d, want 10", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(9)
	h.Observe(5)
	r.GaugeFunc("w", func() float64 { return 1 })
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5555 {
		t.Fatalf("sum = %d, want 5555", h.Sum())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b", L("k", "v")).Set(-2)
	r.GaugeFunc("c", func() float64 { return 1.5 })
	r.Histogram("d").Observe(42)
	snap := r.Snapshot()
	want := map[string]float64{
		"a": 7, "b{k=v}": -2, "c": 1.5, "d_count": 1, "d_sum": 42,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %g, want %g", k, snap[k], v)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.export.skips", L("program", "F")).Add(3)
	r.Counter("core.export.skips", L("program", "U")).Add(1)
	r.Gauge("core.pipeline.depth", L("conn", "F>U")).Set(2)
	r.GaugeFunc("buffer.pool.free", func() float64 { return 12 })
	r.Histogram("collective.allreduce.ns").Observe(1500)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE core_export_skips counter\n",
		`core_export_skips{program="F"} 3` + "\n",
		`core_export_skips{program="U"} 1` + "\n",
		"# TYPE core_pipeline_depth gauge\n",
		`core_pipeline_depth{conn="F>U"} 2` + "\n",
		"# TYPE buffer_pool_free gauge\n",
		"buffer_pool_free 12\n",
		"# TYPE collective_allreduce_ns histogram\n",
		`collective_allreduce_ns_bucket{le="2000"} 1` + "\n",
		`collective_allreduce_ns_bucket{le="+Inf"} 1` + "\n",
		"collective_allreduce_ns_sum 1500\n",
		"collective_allreduce_ns_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q\n%s", want, out)
		}
	}
	// Exactly one TYPE line per metric name.
	if n := strings.Count(out, "# TYPE core_export_skips counter"); n != 1 {
		t.Errorf("TYPE line repeated %d times", n)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("same.name")
	r.Gauge("same.name")
}
