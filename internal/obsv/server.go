package obsv

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the live-introspection HTTP endpoint: /metrics (Prometheus
// text), /trace (Chrome trace_event JSON), /statusz (human-readable runtime
// state), and the standard net/http/pprof handlers under /debug/pprof/.
type Server struct {
	obs       *Observer
	ln        net.Listener
	srv       *http.Server
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Serve starts the introspection server on addr (e.g. "localhost:6060" or
// ":0" for an ephemeral port) backed by obs. It returns once the listener
// is bound; serving continues in a background goroutine until Close.
func Serve(addr string, obs *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="coupled-trace.json"`)
		obs.Tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "obsv statusz · tracing=%v · %s\n\n", obs.Tracer.Enabled(), time.Now().Format(time.RFC3339))
		obs.WriteStatus(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			// Dynamically registered handlers (e.g. /diag/stragglers) are
			// resolved per request so frameworks wired after Serve started
			// still get their endpoints.
			if h := obs.HandlerFor(r.URL.Path); h != nil {
				h.ServeHTTP(w, r)
				return
			}
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "endpoints: /metrics /trace /statusz /debug/pprof/")
		for _, p := range obs.handlerPaths() {
			fmt.Fprint(w, " "+p)
		}
		fmt.Fprintln(w)
	})
	// The pprof handlers are registered on our private mux by hand so we
	// never touch http.DefaultServeMux (tests run many servers in-process).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		obs:  obs,
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully shuts the server down — the listener stops accepting,
// in-flight requests get a 2-second drain, stragglers are cut — and waits
// for the serve goroutine to exit, so callers observe no goroutine leak.
// Safe on a nil server and idempotent: repeated calls return the first
// outcome.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.closeErr = s.srv.Shutdown(ctx)
		if s.closeErr != nil {
			s.srv.Close()
		}
		<-s.done
	})
	return s.closeErr
}
