package obsv

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reported enabled")
	}
	if tr.NewSpanID() != 0 {
		t.Fatal("nil tracer minted a nonzero ID")
	}
	if tr.Now() != 0 {
		t.Fatal("nil tracer returned a nonzero time")
	}
	r := tr.Ring("F", 0)
	if r != nil {
		t.Fatal("nil tracer returned a ring")
	}
	r.Record(Span{Name: "x"}) // must not panic
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Fatalf("disabled trace output malformed: %s", b.String())
	}
}

func TestRingWraps(t *testing.T) {
	tr := NewTracer(4)
	r := tr.Ring("F", 0)
	for i := 0; i < 10; i++ {
		r.Record(Span{Name: "op", TS: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", r.Len())
	}
	spans := r.snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(spans))
	}
	// The oldest retained span is #6 (10 writes into 4 slots).
	if spans[0].TS != 6 || spans[3].TS != 9 {
		t.Fatalf("ring retained wrong spans: %+v", spans)
	}
}

func TestRingLanesAndIDs(t *testing.T) {
	tr := NewTracer(16)
	a := tr.Ring("F", 0)
	b := tr.Ring("F", 0)
	if a != b {
		t.Fatal("same lane returned different rings")
	}
	rep := tr.Ring("F", -1)
	if rep.proc != "F:rep" || rep.tid != 1 {
		t.Fatalf("rep lane = %q tid=%d", rep.proc, rep.tid)
	}
	u := tr.Ring("U", 3)
	if u.pid == a.pid {
		t.Fatal("different programs shared a pid")
	}
	if u.tid != 5 {
		t.Fatalf("rank 3 tid = %d, want 5", u.tid)
	}
	id1, id2 := tr.NewSpanID(), tr.NewSpanID()
	if id1 == 0 || id2 == 0 || id1 == id2 {
		t.Fatalf("bad span IDs %d %d", id1, id2)
	}
}

// TestChromeTraceShape checks the exported JSON parses and contains the
// metadata, complete, and flow events Perfetto needs for cross-process
// arrows.
func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer(64)
	exp := tr.Ring("F", 0)
	imp := tr.Ring("U", 1)
	flow := tr.NewSpanID()
	exp.Record(Span{Name: "export", TS: 1000, Dur: 500, Flow: flow, Detail: "copy"})
	imp.Record(Span{Name: "import", TS: 3000, Dur: 200, Flow: flow, Arg: 7})
	imp.Record(Span{Name: "tick", TS: 100}) // no flow

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	count := map[string]int{}
	var sPid, fPid float64 = -1, -1
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		count[ph]++
		switch ph {
		case "s":
			sPid = ev["pid"].(float64)
		case "f":
			fPid = ev["pid"].(float64)
		}
	}
	if count["M"] != 4 { // 2 process_name + 2 thread_name
		t.Errorf("metadata events = %d, want 4", count["M"])
	}
	if count["X"] != 3 {
		t.Errorf("complete events = %d, want 3", count["X"])
	}
	if count["s"] != 1 || count["f"] != 1 {
		t.Errorf("flow events s=%d f=%d, want 1 each", count["s"], count["f"])
	}
	if sPid == fPid {
		t.Error("flow start and finish landed in the same process; want a cross-process edge")
	}
}

// TestRingConcurrentRecordAndDump exercises writers racing the trace dump;
// run with -race this proves the ring is data-race free.
func TestRingConcurrentRecordAndDump(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			r := tr.Ring("F", lane)
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
					r.Record(Span{Name: "op", TS: int64(j), Flow: uint64(j % 7)})
				}
			}
		}(i)
	}
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := tr.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
