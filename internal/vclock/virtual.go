package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a discrete-event clock: Now stands still until Advance (or
// AdvanceTo) moves it, and timers fire synchronously, in deadline order,
// during that advance. It is safe for concurrent use — application
// goroutines arm timers and Sleep while the simulation driver advances.
//
// Timer channels are buffered (capacity 1) and fired with a non-blocking
// send, mirroring the time package: a ticker whose consumer lags drops
// ticks rather than stalling the clock.
type Virtual struct {
	mu       sync.Mutex
	now      time.Time
	timers   timerHeap
	seq      uint64
	sleepers int
}

// NewVirtual returns a virtual clock reading start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Until implements Clock.
func (v *Virtual) Until(t time.Time) time.Duration { return t.Sub(v.Now()) }

// Sleep implements Clock: it blocks until the clock advances by d. Sleepers
// are counted so a simulation driver can tell blocked-on-time goroutines
// from runnable ones.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := v.NewTimer(d)
	v.mu.Lock()
	v.sleepers++
	v.mu.Unlock()
	<-t.C()
	v.mu.Lock()
	v.sleepers--
	v.mu.Unlock()
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time { return v.NewTimer(d).C() }

// NewTimer implements Clock. A non-positive d fires the timer immediately
// (at the current virtual time), like the time package.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	return v.arm(d, 0)
}

// NewTicker implements Clock. A non-positive period panics, like the time
// package.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	return vticker{v.arm(d, d)}
}

// vticker adapts a periodic vtimer to the Ticker interface (whose Stop has
// no result).
type vticker struct{ t *vtimer }

func (k vticker) C() <-chan time.Time { return k.t.ch }
func (k vticker) Stop()               { k.t.Stop() }

func (v *Virtual) arm(d, period time.Duration) *vtimer {
	t := &vtimer{clock: v, ch: make(chan time.Time, 1), period: period}
	v.mu.Lock()
	v.seq++
	t.seq = v.seq
	if d <= 0 {
		t.ch <- v.now
	} else {
		t.when = v.now.Add(d)
		t.active = true
		heap.Push(&v.timers, t)
	}
	v.mu.Unlock()
	return t
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls within the step, in deadline order.
func (v *Virtual) Advance(d time.Duration) { v.AdvanceTo(v.Now().Add(d)) }

// AdvanceTo moves the clock forward to t (never backward), firing due
// timers in deadline order on the way.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.timers) > 0 {
		next := v.timers[0]
		if !next.active {
			heap.Pop(&v.timers)
			continue
		}
		if next.when.After(t) {
			break
		}
		v.now = next.when
		heap.Pop(&v.timers)
		select {
		case next.ch <- next.when:
		default: // lagging ticker consumer: drop the tick
		}
		if next.period > 0 {
			next.when = next.when.Add(next.period)
			heap.Push(&v.timers, next)
		} else {
			next.active = false
		}
	}
	if t.After(v.now) {
		v.now = t
	}
}

// NextDeadline returns the earliest pending timer deadline, if any.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.timers) > 0 {
		if !v.timers[0].active {
			heap.Pop(&v.timers)
			continue
		}
		return v.timers[0].when, true
	}
	return time.Time{}, false
}

// Sleepers returns how many goroutines are currently blocked in Sleep.
func (v *Virtual) Sleepers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sleepers
}

// vtimer is one armed (or fired) timer/ticker on a Virtual clock.
type vtimer struct {
	clock  *Virtual
	ch     chan time.Time
	when   time.Time
	period time.Duration
	seq    uint64 // arm order, tie-breaking equal deadlines deterministically
	index  int    // heap position
	inHeap bool
	active bool
}

func (t *vtimer) C() <-chan time.Time { return t.ch }

func (t *vtimer) Stop() bool {
	v := t.clock
	v.mu.Lock()
	defer v.mu.Unlock()
	was := t.active
	t.active = false // lazy removal: the heap skips inactive nodes
	return was
}

func (t *vtimer) Reset(d time.Duration) bool {
	v := t.clock
	v.mu.Lock()
	defer v.mu.Unlock()
	was := t.active
	if d <= 0 {
		t.active = false
		select {
		case t.ch <- v.now:
		default:
		}
		return was
	}
	t.when = v.now.Add(d)
	t.active = true
	v.seq++
	t.seq = v.seq
	if t.inHeap {
		heap.Fix(&v.timers, t.index)
	} else {
		heap.Push(&v.timers, t)
	}
	return was
}

// timerHeap orders timers by (deadline, arm sequence).
type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*vtimer)
	t.index = len(*h)
	t.inHeap = true
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.inHeap = false
	*h = old[:n-1]
	return t
}
