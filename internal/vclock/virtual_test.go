package vclock

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Unix(1000, 0)

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual(t0)
	if !v.Now().Equal(t0) {
		t.Fatalf("Now = %v, want %v", v.Now(), t0)
	}
	v.Advance(3 * time.Second)
	if got, want := v.Now(), t0.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
	if d := v.Since(t0); d != 3*time.Second {
		t.Fatalf("Since = %v", d)
	}
	if d := v.Until(t0.Add(5 * time.Second)); d != 2*time.Second {
		t.Fatalf("Until = %v", d)
	}
}

func TestVirtualTimerFiresInOrder(t *testing.T) {
	v := NewVirtual(t0)
	a := v.NewTimer(2 * time.Second)
	b := v.NewTimer(1 * time.Second)
	if when, ok := v.NextDeadline(); !ok || !when.Equal(t0.Add(time.Second)) {
		t.Fatalf("NextDeadline = %v %v", when, ok)
	}
	v.Advance(90 * time.Minute)
	if got := <-b.C(); !got.Equal(t0.Add(1 * time.Second)) {
		t.Fatalf("b fired at %v", got)
	}
	if got := <-a.C(); !got.Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("a fired at %v", got)
	}
}

func TestVirtualTimerStopAndReset(t *testing.T) {
	v := NewVirtual(t0)
	a := v.NewTimer(time.Second)
	if !a.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	v.Advance(2 * time.Second)
	select {
	case <-a.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if a.Reset(time.Second) {
		t.Fatal("Reset on stopped timer = true")
	}
	v.Advance(time.Second)
	select {
	case got := <-a.C():
		if !got.Equal(t0.Add(3 * time.Second)) {
			t.Fatalf("reset timer fired at %v", got)
		}
	default:
		t.Fatal("reset timer did not fire")
	}
	// Reset of an already-armed timer moves the deadline.
	b := v.NewTimer(time.Minute)
	b.Reset(time.Second)
	v.Advance(2 * time.Second)
	select {
	case <-b.C():
	default:
		t.Fatal("re-armed timer did not fire at its new deadline")
	}
	// Stop after Reset must stick (the heap node is shared).
	c := v.NewTimer(time.Second)
	c.Reset(2 * time.Second)
	if !c.Stop() {
		t.Fatal("Stop after Reset = false")
	}
	v.Advance(time.Hour)
	select {
	case <-c.C():
		t.Fatal("stopped-after-reset timer fired")
	default:
	}
}

func TestVirtualImmediateTimer(t *testing.T) {
	v := NewVirtual(t0)
	a := v.NewTimer(0)
	select {
	case <-a.C():
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
}

func TestVirtualTicker(t *testing.T) {
	v := NewVirtual(t0)
	tick := v.NewTicker(time.Second)
	v.Advance(time.Second)
	if got := <-tick.C(); !got.Equal(t0.Add(time.Second)) {
		t.Fatalf("tick 1 at %v", got)
	}
	v.Advance(time.Second)
	if got := <-tick.C(); !got.Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("tick 2 at %v", got)
	}
	// A lagging consumer drops ticks instead of blocking the clock.
	v.Advance(10 * time.Second)
	<-tick.C()
	select {
	case <-tick.C():
		t.Fatal("dropped ticks were buffered")
	default:
	}
	tick.Stop()
	v.Advance(10 * time.Second)
	select {
	case <-tick.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestVirtualSleepConcurrent(t *testing.T) {
	v := NewVirtual(t0)
	var wg sync.WaitGroup
	woke := make(chan time.Duration, 4)
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i) * time.Second)
			woke <- v.Since(t0)
		}(i)
	}
	// Wait for all four to block, then release them with one advance.
	deadline := time.Now().Add(5 * time.Second)
	for v.Sleepers() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d sleepers blocked", v.Sleepers())
		}
		time.Sleep(time.Millisecond)
	}
	v.Advance(10 * time.Second)
	wg.Wait()
	close(woke)
	n := 0
	for range woke {
		n++
	}
	if n != 4 {
		t.Fatalf("%d sleepers woke", n)
	}
}

func TestWallClockBasics(t *testing.T) {
	c := Or(nil)
	start := c.Now()
	timer := c.NewTimer(time.Millisecond)
	defer timer.Stop()
	<-timer.C()
	if c.Since(start) <= 0 {
		t.Fatal("wall clock did not advance")
	}
	tick := c.NewTicker(time.Millisecond)
	<-tick.C()
	tick.Stop()
	c.Sleep(time.Microsecond)
	<-c.After(time.Microsecond)
	if Or(c) != c {
		t.Fatal("Or(non-nil) changed the clock")
	}
}
