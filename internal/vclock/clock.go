// Package vclock provides the injectable clock the framework's time-driven
// machinery runs on: heartbeat leases, reliable-layer retransmit tickers,
// coalescing flush windows, reconnect backoff, fault-injection delays and
// buffer-retention accounting all draw their notion of "now" and their
// timers from a Clock instead of the time package directly.
//
// Two implementations exist. Wall delegates to the real time package and is
// the default everywhere — production behavior is unchanged. Virtual is a
// discrete-event clock owned by the deterministic simulation harness
// (internal/dst): time advances only when the simulation says so, timers
// fire in deadline order under a single lock, and a heartbeat interval of
// 250ms costs no real milliseconds at all. Because every time-driven
// component reads the same injected clock, a dst run's timer firings are a
// pure function of the event schedule, not of the host scheduler.
package vclock

import "time"

// Clock is the time source injected into the framework layers.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until the clock has advanced by d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once it has
	// advanced by d. The underlying timer cannot be stopped; prefer
	// NewTimer for waits that are usually abandoned.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once, d from now.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
	// Until returns the duration until t on this clock.
	Until(t time.Time) time.Duration
}

// Timer is the clock-agnostic shape of time.Timer.
type Timer interface {
	// C returns the channel the timer fires on.
	C() <-chan time.Time
	// Stop prevents the timer from firing; it reports whether the call
	// stopped a pending fire.
	Stop() bool
	// Reset re-arms the timer to fire d from now.
	Reset(d time.Duration) bool
}

// Ticker is the clock-agnostic shape of time.Ticker.
type Ticker interface {
	// C returns the channel the ticker delivers ticks on.
	C() <-chan time.Time
	// Stop shuts the ticker down.
	Stop()
}

// Wall is the real-time clock: every method delegates to the time package.
// It is the value every layer falls back to when no clock is injected.
var Wall Clock = wallClock{}

// Or returns c, or Wall when c is nil — the one-line default every
// configuration struct resolves its optional clock field with.
func Or(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (wallClock) NewTimer(d time.Duration) Timer         { return wallTimer{time.NewTimer(d)} }
func (wallClock) NewTicker(d time.Duration) Ticker       { return wallTicker{time.NewTicker(d)} }
func (wallClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (wallClock) Until(t time.Time) time.Duration        { return time.Until(t) }

type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time        { return w.t.C }
func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }
